package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/shuffle"
)

// Coordinator drives one multi-process job execution. It listens for worker
// registrations, then schedules map and reduce tasks over the registered
// workers through the same exec.Scheduler the in-process engine uses. By
// default the two waves overlap: reduce tasks are dispatched at job start
// and every completed map's sealed-run metadata is streamed to them as 'S'
// pushes, so reducers fetch and consume runs while later maps are still
// running — the cross-wave overlap the paper's pipelined mode is about,
// now across process boundaries. exec.Options.Staged restores the PR-3
// back-to-back waves (the baseline the overlap benchmarks compare against).
// Each worker's control connection is demultiplexed by a reader goroutine,
// so one worker can carry a map task, a reduce task and segment pushes
// concurrently.
type Coordinator struct {
	ln net.Listener

	mu      sync.Mutex
	workers []*remoteWorker
	waves   map[int][]waveMeta    // map task index -> sealed waves
	active  map[int]*remoteWorker // partition -> worker running its reduce
	nMaps   int
}

// pendKey identifies one awaited reply: the reply kind ('m' or 'r') plus
// the task id (map index or partition).
type pendKey struct {
	kind byte
	id   int
}

// asyncReply is one routed reply frame (or the task's failure).
type asyncReply struct {
	payload []byte
	err     error
}

// remoteWorker proxies one worker process as an exec.Worker. Writes are
// serialized by wmu; replies are routed to awaiting callers by the reader
// goroutine, so multiple tasks can be in flight on one connection.
type remoteWorker struct {
	c    *Coordinator
	id   int
	conn net.Conn
	br   *bufio.Reader
	addr string // the worker's run-server

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[pendKey]chan asyncReply
	dead    chan struct{} // closed when the connection is lost
	deadErr error

	// per-worker aggregation (written under c.mu). spilled/rawSpilled sum
	// per-task deltas for the CURRENT job (reset at job start); fetchDials
	// is the worker pool's lifetime dial total from its last reply, with
	// dialsBase snapshotting the previous jobs' share so a reused worker
	// pool reports per-job dials.
	spilledBytes    int64
	rawSpilledBytes int64
	fetchDials      int64
	dialsBase       int64
}

// Listen opens the coordinator's registration listener on an ephemeral
// loopback port.
func Listen() (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpexec: listen: %w", err)
	}
	return &Coordinator{ln: ln, waves: make(map[int][]waveMeta), active: make(map[int]*remoteWorker)}, nil
}

// Addr returns the address workers dial (pass it to Serve / -worker-coord).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// WaitWorkers blocks until n workers have registered or the timeout lapses.
// Each registered worker gets a reader goroutine that routes its reply
// frames until the connection closes.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for len(c.workers) < n {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpexec: waiting for worker %d/%d: %w", len(c.workers)+1, n, err)
		}
		br := bufio.NewReader(conn)
		typ, payload, err := readMsg(br)
		if err != nil || typ != msgHello {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad registration (type %q): %v", typ, err)
		}
		d := &dec{buf: payload}
		addr := d.str()
		if d.err != nil {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad hello: %w", d.err)
		}
		w := &remoteWorker{
			c: c, id: len(c.workers), conn: conn, br: br, addr: addr,
			pending: make(map[pendKey]chan asyncReply),
			dead:    make(chan struct{}),
		}
		c.workers = append(c.workers, w)
		go w.readLoop()
	}
	return nil
}

// Close severs every worker connection (after sending a best-effort bye)
// and stops the listener. Workers exit when their control connection ends;
// reader goroutines exit with their connections.
func (c *Coordinator) Close() error {
	for _, w := range c.workers {
		_ = w.send(msgBye, nil)
		_ = w.conn.Close()
	}
	return c.ln.Close()
}

// Run executes job over input across the registered workers and returns the
// assembled result. opts follow mr.Options semantics; the transport is
// forcibly the TCP run exchange (the only one that crosses process
// boundaries). A worker that dies mid-task fails the job with an error and
// aborts the peers' in-flight reduce tasks — the scheduler drains cleanly,
// no goroutine outlives the call.
func (c *Coordinator) Run(job exec.Job, input []core.Record, opts exec.Options) (*mr.Result, error) {
	opts.Transport = shuffle.TCP
	opts.Normalize()
	if err := mr.Validate(job, opts); err != nil {
		return nil, err
	}
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("mpexec: no workers registered")
	}
	start := time.Now()
	// Staged mode keeps PR 3's one reduce slot per worker (reduce tasks do
	// all their work the moment they are dispatched). Overlapped reduce
	// tasks spend the map runway parked on segment pushes — a blocked
	// goroutine on the worker — so the whole reduce wave is dispatched up
	// front, mirroring the in-process engine's all-partitions-concurrent
	// scheduling; reducers then consume each map's output the moment it is
	// routed instead of queueing behind a single slot.
	redSlots := 1
	if !opts.Staged {
		redSlots = (opts.Reducers + len(c.workers) - 1) / len(c.workers)
	}
	assignments := make([]exec.Assignment, len(c.workers))
	for i, w := range c.workers {
		assignments[i] = exec.Assignment{W: w, MapSlots: 1, ReduceSlots: redSlots}
	}
	maps := exec.SplitMaps(input, opts.Mappers)
	c.mu.Lock()
	c.waves = make(map[int][]waveMeta, len(maps))
	c.active = make(map[int]*remoteWorker)
	c.nMaps = len(maps)
	for _, w := range c.workers {
		w.spilledBytes, w.rawSpilledBytes = 0, 0
		w.dialsBase = w.fetchDials
	}
	c.mu.Unlock()
	// Open the job on every worker: resets worker-side per-job state (a
	// latched abort, buffered pushes) left by a previous job on this pool.
	for _, w := range c.workers {
		if err := w.send(msgJobStart, nil); err != nil {
			return nil, fmt.Errorf("mpexec: job %q: open on %s: %w", job.Name, w, err)
		}
	}

	var sum *exec.Summary
	var err error
	if opts.Staged {
		// The pre-overlap control plane: the reduce wave needs the full
		// sealed-run routing table, so the phases run back to back.
		mapSched := exec.Scheduler{Workers: assignments, OnFail: c.abort}
		sum, err = mapSched.Run(maps, nil)
		if err == nil {
			redSched := exec.Scheduler{Workers: assignments, OnFail: c.abort}
			var redSum *exec.Summary
			redSum, err = redSched.Run(nil, exec.ReduceTasks(opts.Reducers))
			if err == nil {
				sum.Reduces = redSum.Reduces
			}
		}
	} else {
		// Cross-wave overlap: one schedule dispatches both waves; reduce
		// tasks receive their routing tables incrementally as maps finish.
		sched := exec.Scheduler{Workers: assignments, OnFail: c.abort}
		sum, err = sched.Run(maps, exec.ReduceTasks(opts.Reducers))
	}
	if err != nil {
		return nil, fmt.Errorf("mpexec: job %q: %w", job.Name, err)
	}

	res := mr.Assemble(sum)
	for _, w := range c.workers {
		res.SpilledBytes += w.spilledBytes
		res.RawSpillBytes += w.rawSpilledBytes
		res.FetchDials += w.fetchDials - w.dialsBase
	}
	res.CompressedSpillBytes = res.SpilledBytes
	res.Wall = time.Since(start)
	return res, nil
}

// abort tells every worker to fail its in-flight reduce sources (the
// scheduler's OnFail): reduce tasks blocked waiting for segment pushes from
// maps that will never finish wake up and error out, so a worker death
// fails the whole job promptly instead of wedging the overlap.
func (c *Coordinator) abort(err error) {
	msg := putStr(nil, err.Error())
	for _, w := range c.workers {
		_ = w.send(msgAbort, msg) // best-effort; dead workers are already failing
	}
}

// routedSegs snapshots partition r's segments of every completed map, in
// (map task, publish order) order — the ordering whose stable merge
// reproduces the single-process engine byte for byte. Callers hold c.mu.
func (c *Coordinator) routedSegs(r int) []mapSegs {
	var routed []mapSegs
	for m := 0; m < c.nMaps; m++ {
		waves, ok := c.waves[m]
		if !ok {
			continue
		}
		routed = append(routed, mapSegs{mapIndex: m, segs: segsForPartition(waves, r)})
	}
	return routed
}

// segsForPartition projects one map task's waves onto partition r.
func segsForPartition(waves []waveMeta, r int) []shuffle.Segment {
	var segs []shuffle.Segment
	for _, w := range waves {
		if seg, ok := w.segmentOf(r); ok {
			segs = append(segs, seg)
		}
	}
	return segs
}

// String implements exec.Worker.
func (w *remoteWorker) String() string { return fmt.Sprintf("worker-%d@%s", w.id, w.addr) }

// readLoop routes every reply frame from the worker to its awaiting task
// until the connection ends, at which point all in-flight and future
// awaits fail with "worker died".
func (w *remoteWorker) readLoop() {
	for {
		typ, payload, err := readMsg(w.br)
		if err != nil {
			// A dead worker (killed mid-task) surfaces here as EOF/reset.
			w.die(fmt.Errorf("worker %s died: %w", w, err))
			return
		}
		switch typ {
		case msgMapDone, msgReduceDone:
			d := &dec{buf: payload}
			id := int(d.uvarint())
			if d.err != nil {
				w.die(fmt.Errorf("worker %s: corrupt reply: %w", w, d.err))
				return
			}
			w.deliver(pendKey{typ, id}, asyncReply{payload: payload})
		case msgError:
			kind, id, msg, err := decodeTaskError(payload)
			if err != nil {
				w.die(fmt.Errorf("worker %s: corrupt error frame: %w", w, err))
				return
			}
			w.deliver(pendKey{kind, id}, asyncReply{err: fmt.Errorf("%s: %s", w, msg)})
		default:
			w.die(fmt.Errorf("worker %s: unexpected frame %q", w, typ))
			return
		}
	}
}

// die latches the connection-lost error and wakes every awaiting task.
func (w *remoteWorker) die(err error) {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	select {
	case <-w.dead:
		return
	default:
	}
	w.deadErr = err
	close(w.dead)
}

// deliver routes one reply to its awaiting task (stray replies are
// dropped — the await may have failed already via die).
func (w *remoteWorker) deliver(key pendKey, r asyncReply) {
	w.pmu.Lock()
	ch, ok := w.pending[key]
	delete(w.pending, key)
	w.pmu.Unlock()
	if ok {
		ch <- r // buffered: never blocks
	}
}

// expect registers interest in one reply before its request is sent (so a
// fast reply cannot race the registration).
func (w *remoteWorker) expect(key pendKey) chan asyncReply {
	ch := make(chan asyncReply, 1)
	w.pmu.Lock()
	w.pending[key] = ch
	w.pmu.Unlock()
	return ch
}

// send writes one frame, serialized against concurrent task requests,
// pushes and aborts.
func (w *remoteWorker) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(w.conn, typ, payload)
}

// await blocks for the expected reply or the connection's death.
func (w *remoteWorker) await(ch chan asyncReply) ([]byte, error) {
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-w.dead:
		return nil, w.deadErr
	}
}

// call runs one request/reply exchange for the task identified by key.
func (w *remoteWorker) call(typ byte, payload []byte, key pendKey) ([]byte, error) {
	ch := w.expect(key)
	if err := w.send(typ, payload); err != nil {
		w.pmu.Lock()
		delete(w.pending, key)
		w.pmu.Unlock()
		return nil, fmt.Errorf("send to %s: %w", w, err)
	}
	return w.await(ch)
}

// RunMap implements exec.Worker: ship the split, collect sealed-run
// metadata, and push the new routes to every in-flight reduce task.
func (w *remoteWorker) RunMap(t exec.MapTask) (exec.MapStats, error) {
	b := binary.AppendUvarint(nil, uint64(t.Index))
	b = putRecords(b, t.Split)
	payload, err := w.call(msgMapTask, b, pendKey{msgMapDone, t.Index})
	if err != nil {
		return exec.MapStats{}, err
	}
	md, err := decodeMapDone(payload, w.addr)
	if err != nil {
		return exec.MapStats{}, fmt.Errorf("%s: %w", w, err)
	}
	if md.index != t.Index {
		return exec.MapStats{}, fmt.Errorf("%s: map reply for task %d, want %d", w, md.index, t.Index)
	}
	c := w.c
	c.mu.Lock()
	c.waves[t.Index] = md.waves
	w.spilledBytes += md.spilledBytes
	w.rawSpilledBytes += md.rawSpilledBytes
	// Route the completed map to every reduce task currently in flight —
	// the streamed 'm' metadata that lets reducers start fetching while
	// later maps are still running. Reduce tasks dispatched after this
	// moment get the map in their 'R' snapshot instead (both under c.mu,
	// so each reduce task sees every map exactly once).
	type push struct {
		w    *remoteWorker
		part int
	}
	var pushes []push
	for part, rw := range c.active {
		pushes = append(pushes, push{rw, part})
	}
	c.mu.Unlock()
	for _, p := range pushes {
		_ = p.w.send(msgSegPush, encodeSegPush(p.part, t.Index, segsForPartition(md.waves, p.part)))
	}
	return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
}

// RunReduce implements exec.Worker: ship the partition's routing snapshot
// (later maps arrive as pushes), collect output records.
func (w *remoteWorker) RunReduce(t exec.ReduceTask) (exec.ReduceResult, error) {
	c := w.c
	c.mu.Lock()
	nMaps := c.nMaps
	routed := c.routedSegs(t.Partition)
	c.active[t.Partition] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.active[t.Partition] == w {
			delete(c.active, t.Partition)
		}
		c.mu.Unlock()
	}()
	payload, err := w.call(msgReduceTask, encodeReduceTask(t.Partition, nMaps, routed),
		pendKey{msgReduceDone, t.Partition})
	if err != nil {
		return exec.ReduceResult{}, err
	}
	d := &dec{buf: payload}
	partition := int(d.uvarint())
	res := exec.ReduceResult{
		Spills:           int(d.uvarint()),
		PeakPartialBytes: int64(d.uvarint()),
		MergePasses:      int(d.uvarint()),
	}
	spilledBytes := int64(d.uvarint())
	rawSpilledBytes := int64(d.uvarint())
	res.FetchBytes = int64(d.uvarint())
	dials := int64(d.uvarint())
	res.Output = d.records()
	if d.err != nil {
		return exec.ReduceResult{}, fmt.Errorf("%s: %w", w, d.err)
	}
	if partition != t.Partition {
		return exec.ReduceResult{}, fmt.Errorf("%s: reduce reply for partition %d, want %d", w, partition, t.Partition)
	}
	c.mu.Lock()
	w.spilledBytes += spilledBytes
	w.rawSpilledBytes += rawSpilledBytes
	if dials > w.fetchDials {
		// The worker reports its pool's lifetime dial count; the latest
		// value is the worker's job total.
		w.fetchDials = dials
	}
	c.mu.Unlock()
	return res, nil
}
