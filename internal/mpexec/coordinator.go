package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/shuffle"
)

// Coordinator drives one multi-process job execution. It listens for worker
// registrations, then schedules map and reduce tasks over the registered
// workers through the same exec.Scheduler the in-process engine uses. By
// default the two waves overlap: reduce tasks are dispatched at job start
// and every completed map's sealed-run metadata is streamed to them as 'S'
// pushes, so reducers fetch and consume runs while later maps are still
// running — the cross-wave overlap the paper's pipelined mode is about,
// now across process boundaries. exec.Options.Staged restores the PR-3
// back-to-back waves (the baseline the overlap benchmarks compare against).
// Each worker's control connection is demultiplexed by a reader goroutine,
// so one worker can carry a map task, a reduce task and segment pushes
// concurrently.
//
// Worker death is a non-event, not a job failure, as long as one worker
// survives: a closed control connection or four missed heartbeats marks the
// worker dead, the scheduler requeues its in-flight tasks on survivors, and
// completed maps whose sealed runs died with the worker are re-executed —
// with invalidation and supersede 'S' pushes re-routing any parked reduce
// task to the new attempt's segments. exec.Options.Speculative additionally
// clones straggler maps near the end of the wave; attempt IDs keep every
// duplicate or re-executed route idempotent, so barrier output stays
// byte-identical through churn (map tasks are deterministic: re-running one
// on identical input yields identical output bytes).
type Coordinator struct {
	ln net.Listener

	mu      sync.Mutex
	workers []*remoteWorker
	routes  map[int]*mapRoute     // map task index -> its winning route
	active  map[int]*remoteWorker // partition -> worker running its reduce
	nMaps   int
	sched   *exec.Scheduler // live during Run; WorkerLost target
}

// mapRoute is one map task's current sealed-run location: the attempt that
// produced the waves and the worker serving them. A route invalidates
// (valid=false) when its worker dies; the map index re-enters the scheduler
// and a later attempt's completion replaces the route.
type mapRoute struct {
	w       *remoteWorker
	attempt int
	waves   []waveMeta
	valid   bool
}

// pendKey identifies one awaited reply: the reply kind ('m' or 'r') plus
// the task id (map index or partition).
type pendKey struct {
	kind byte
	id   int
}

// asyncReply is one routed reply frame (or the task's failure).
type asyncReply struct {
	payload []byte
	err     error
}

// remoteWorker proxies one worker process as an exec.Worker. Writes are
// serialized by wmu; replies are routed to awaiting callers by the reader
// goroutine, so multiple tasks can be in flight on one connection.
type remoteWorker struct {
	c    *Coordinator
	id   int
	name string
	conn net.Conn
	br   *bufio.Reader
	addr string // the worker's run-server

	wmu sync.Mutex // serializes frame writes

	lastBeat atomic.Int64 // unix nanos of the last frame received

	pmu     sync.Mutex
	pending map[pendKey]chan asyncReply
	dead    chan struct{} // closed when the worker is declared dead
	deadErr error

	// per-worker aggregation (written under c.mu). spilled/rawSpilled sum
	// per-task deltas for the CURRENT job (reset at job start); fetchDials
	// is the worker pool's lifetime dial total from its last reply, with
	// dialsBase snapshotting the previous jobs' share so a reused worker
	// pool reports per-job dials.
	spilledBytes    int64
	rawSpilledBytes int64
	fetchDials      int64
	dialsBase       int64
}

// Listen opens the coordinator's registration listener on an ephemeral
// loopback port.
func Listen() (*Coordinator, error) { return ListenOn("127.0.0.1:0") }

// ListenOn opens the registration listener on an explicit address (e.g.
// ":0" to accept workers from other hosts; their run-servers then bind all
// interfaces too and advertise a dialable host).
func ListenOn(bind string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpexec: listen: %w", err)
	}
	return &Coordinator{ln: ln, routes: make(map[int]*mapRoute), active: make(map[int]*remoteWorker)}, nil
}

// Addr returns the address workers dial (pass it to Serve / -worker-coord).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers returns how many workers have registered and are still live.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.isDead() {
			n++
		}
	}
	return n
}

// WaitWorkers blocks until n workers have registered or the timeout lapses.
// Each registered worker gets a reader goroutine that routes its reply
// frames until the connection closes.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		have := len(c.workers)
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		if tl, ok := c.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpexec: waiting for worker %d/%d: %w", have+1, n, err)
		}
		br := bufio.NewReader(conn)
		typ, payload, err := readMsg(br)
		if err != nil || typ != msgHello {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad registration (type %q): %v", typ, err)
		}
		d := &dec{buf: payload}
		addr := d.str()
		name := d.str()
		if d.err != nil {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad hello: %w", d.err)
		}
		c.mu.Lock()
		w := &remoteWorker{
			c: c, id: len(c.workers), name: name, conn: conn, br: br, addr: addr,
			pending: make(map[pendKey]chan asyncReply),
			dead:    make(chan struct{}),
		}
		if w.name == "" {
			w.name = fmt.Sprintf("worker-%d", w.id)
		}
		w.lastBeat.Store(time.Now().UnixNano())
		c.workers = append(c.workers, w)
		c.mu.Unlock()
		go w.readLoop()
	}
}

// Close severs every worker connection (after sending a best-effort bye)
// and stops the listener. Workers exit when their control connection ends;
// reader goroutines exit with their connections.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	ws := append([]*remoteWorker(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range ws {
		_ = w.send(msgBye, nil)
		_ = w.conn.Close()
	}
	return c.ln.Close()
}

// Run executes job over input across the registered workers and returns the
// assembled result. opts follow mr.Options semantics; the transport is
// forcibly the TCP run exchange (the only one that crosses process
// boundaries). Workers that die mid-job (killed process, closed control
// connection, missed heartbeats) have their tasks re-executed on survivors;
// the job fails only when no live worker remains, a task exhausts its
// attempt budget, or a task fails for a non-liveness reason.
func (c *Coordinator) Run(job exec.Job, input []core.Record, opts exec.Options) (*mr.Result, error) {
	opts.Transport = shuffle.TCP
	opts.Normalize()
	if err := mr.Validate(job, opts); err != nil {
		return nil, err
	}
	c.mu.Lock()
	var live []*remoteWorker
	for _, w := range c.workers {
		if !w.isDead() {
			live = append(live, w)
		}
	}
	c.mu.Unlock()
	if len(live) == 0 {
		return nil, fmt.Errorf("mpexec: no live workers registered")
	}
	start := time.Now()
	// Staged mode keeps PR 3's one reduce slot per worker (reduce tasks do
	// all their work the moment they are dispatched). Overlapped reduce
	// tasks spend the map runway parked on segment pushes — a blocked
	// goroutine on the worker — so the whole reduce wave is dispatched up
	// front, mirroring the in-process engine's all-partitions-concurrent
	// scheduling; reducers then consume each map's output the moment it is
	// routed instead of queueing behind a single slot.
	redSlots := 1
	if !opts.Staged {
		redSlots = (opts.Reducers + len(live) - 1) / len(live)
	}
	assignments := make([]exec.Assignment, len(live))
	for i, w := range live {
		assignments[i] = exec.Assignment{W: w, MapSlots: 1, ReduceSlots: redSlots}
	}
	maps := exec.SplitMaps(input, opts.Mappers)
	// One scheduler drives both waves in both modes (Staged gates reduce
	// dispatch internally), so worker-lost requeues and map resubmissions
	// work identically during the map runway and the reduce tail.
	sched := &exec.Scheduler{
		Workers:        assignments,
		OnFail:         c.abort,
		Staged:         opts.Staged,
		Speculate:      opts.Speculative,
		SpeculateAfter: opts.SpeculativeThreshold,
	}
	c.mu.Lock()
	c.routes = make(map[int]*mapRoute, len(maps))
	c.active = make(map[int]*remoteWorker)
	c.nMaps = len(maps)
	c.sched = sched
	for _, w := range live {
		w.spilledBytes, w.rawSpilledBytes = 0, 0
		w.dialsBase = w.fetchDials
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.sched = nil
		c.mu.Unlock()
	}()
	// Open the job on every worker: resets worker-side per-job state (a
	// latched abort, buffered pushes) left by a previous job on this pool.
	// A worker whose connection is already broken fails here and is declared
	// dead; its tasks go to the survivors.
	for _, w := range live {
		if err := w.send(msgJobStart, nil); err != nil {
			w.die(fmt.Errorf("worker %s: open job: %w", w, err))
		}
	}
	stopMon := make(chan struct{})
	go c.monitor(opts.HeartbeatInterval, stopMon)
	defer close(stopMon)

	sum, err := sched.Run(maps, exec.ReduceTasks(opts.Reducers))
	if err != nil {
		return nil, fmt.Errorf("mpexec: job %q: %w", job.Name, err)
	}

	res := mr.Assemble(sum)
	c.mu.Lock()
	for _, w := range c.workers {
		res.SpilledBytes += w.spilledBytes
		res.RawSpillBytes += w.rawSpilledBytes
		res.FetchDials += w.fetchDials - w.dialsBase
	}
	c.mu.Unlock()
	res.CompressedSpillBytes = res.SpilledBytes
	res.Wall = time.Since(start)
	return res, nil
}

// monitor closes the connection of any worker silent for four heartbeat
// intervals, funneling slow deaths (wedged process, dropped network) into
// the same readLoop-exit path a killed process takes.
func (c *Coordinator) monitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			c.mu.Lock()
			ws := append([]*remoteWorker(nil), c.workers...)
			c.mu.Unlock()
			for _, w := range ws {
				if w.isDead() {
					continue
				}
				if now-w.lastBeat.Load() > int64(4*interval) {
					// The readLoop unblocks with an error and declares the
					// worker dead.
					_ = w.conn.Close()
				}
			}
		}
	}
}

// workerLost reacts to a worker's death: invalidate the routes it served,
// tell every surviving reduce task to drop them (so fetches park instead of
// erroring against a dead run-server), and hand the affected map indexes
// back to the scheduler for re-execution. A no-op outside a run.
func (c *Coordinator) workerLost(w *remoteWorker) {
	c.mu.Lock()
	sched := c.sched
	if sched == nil {
		c.mu.Unlock()
		return
	}
	var affected []int
	for m, rt := range c.routes {
		if rt.valid && rt.w == w {
			rt.valid = false
			affected = append(affected, m)
		}
	}
	type push struct {
		w    *remoteWorker
		part int
	}
	var pushes []push
	for part, rw := range c.active {
		if rw == w {
			continue // its own reduce tasks requeue; nothing to re-route
		}
		pushes = append(pushes, push{rw, part})
	}
	c.mu.Unlock()
	sort.Ints(affected)
	for _, p := range pushes {
		for _, m := range affected {
			_ = p.w.send(msgSegPush, encodeSegPush(p.part, m, -1, nil))
		}
	}
	sched.WorkerLost(w, affected)
}

// abort tells every worker to fail its in-flight reduce sources (the
// scheduler's OnFail): reduce tasks blocked waiting for segment pushes that
// will never come wake up and error out, so a genuine task failure drains
// the job promptly instead of wedging the overlap.
func (c *Coordinator) abort(err error) {
	msg := putStr(nil, err.Error())
	c.mu.Lock()
	ws := append([]*remoteWorker(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range ws {
		_ = w.send(msgAbort, msg) // best-effort; dead workers are already failing
	}
}

// routedSegs snapshots partition r's segments of every completed map with a
// live route, in (map task, publish order) order — the ordering whose
// stable merge reproduces the single-process engine byte for byte.
// Invalidated maps are omitted: their replacement attempt arrives as a
// supersede push. Callers hold c.mu.
func (c *Coordinator) routedSegs(r int) []mapSegs {
	var routed []mapSegs
	for m := 0; m < c.nMaps; m++ {
		rt, ok := c.routes[m]
		if !ok || !rt.valid {
			continue
		}
		routed = append(routed, mapSegs{mapIndex: m, attempt: rt.attempt, segs: segsForPartition(rt.waves, r)})
	}
	return routed
}

// segsForPartition projects one map task's waves onto partition r.
func segsForPartition(waves []waveMeta, r int) []shuffle.Segment {
	var segs []shuffle.Segment
	for _, w := range waves {
		if seg, ok := w.segmentOf(r); ok {
			segs = append(segs, seg)
		}
	}
	return segs
}

// String implements exec.Worker.
func (w *remoteWorker) String() string { return fmt.Sprintf("%s@%s", w.name, w.addr) }

// isDead reports whether the worker has been declared dead.
func (w *remoteWorker) isDead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

// readLoop routes every reply frame from the worker to its awaiting task
// until the connection ends, at which point the worker is declared dead:
// in-flight and future awaits fail with a WorkerLostError and the
// coordinator re-executes what the worker was serving.
func (w *remoteWorker) readLoop() {
	for {
		typ, payload, err := readMsg(w.br)
		if err != nil {
			// A dead worker (killed mid-task) surfaces here as EOF/reset.
			w.die(fmt.Errorf("connection lost: %w", err))
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		switch typ {
		case msgHeartbeat:
			// Liveness only; lastBeat already updated.
		case msgMapDone, msgReduceDone:
			d := &dec{buf: payload}
			id := int(d.uvarint())
			if d.err != nil {
				w.die(fmt.Errorf("corrupt reply: %w", d.err))
				return
			}
			w.deliver(pendKey{typ, id}, asyncReply{payload: payload})
		case msgError:
			kind, id, msg, err := decodeTaskError(payload)
			if err != nil {
				w.die(fmt.Errorf("corrupt error frame: %w", err))
				return
			}
			w.deliver(pendKey{kind, id}, asyncReply{err: fmt.Errorf("%s: %s", w, msg)})
		default:
			w.die(fmt.Errorf("unexpected frame %q", typ))
			return
		}
	}
}

// die latches the worker's death, wakes every awaiting task, and kicks the
// coordinator's re-execution path. Idempotent.
func (w *remoteWorker) die(err error) {
	w.pmu.Lock()
	select {
	case <-w.dead:
		w.pmu.Unlock()
		return
	default:
	}
	w.deadErr = err
	close(w.dead)
	w.pmu.Unlock()
	_ = w.conn.Close()
	w.c.workerLost(w)
}

// deliver routes one reply to its awaiting task (stray replies are
// dropped — the await may have failed already via die).
func (w *remoteWorker) deliver(key pendKey, r asyncReply) {
	w.pmu.Lock()
	ch, ok := w.pending[key]
	delete(w.pending, key)
	w.pmu.Unlock()
	if ok {
		ch <- r // buffered: never blocks
	}
}

// expect registers interest in one reply before its request is sent (so a
// fast reply cannot race the registration).
func (w *remoteWorker) expect(key pendKey) chan asyncReply {
	ch := make(chan asyncReply, 1)
	w.pmu.Lock()
	w.pending[key] = ch
	w.pmu.Unlock()
	return ch
}

// send writes one frame, serialized against concurrent task requests,
// pushes and aborts.
func (w *remoteWorker) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(w.conn, typ, payload)
}

// lost wraps err so the scheduler classifies it as a dead worker (requeue)
// rather than a task failure (abort).
func (w *remoteWorker) lost(err error) error {
	return &exec.WorkerLostError{Worker: w.String(), Err: err}
}

// await blocks for the expected reply or the worker's death.
func (w *remoteWorker) await(ch chan asyncReply) ([]byte, error) {
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-w.dead:
		return nil, w.lost(w.deadErr)
	}
}

// call runs one request/reply exchange for the task identified by key.
func (w *remoteWorker) call(typ byte, payload []byte, key pendKey) ([]byte, error) {
	ch := w.expect(key)
	if err := w.send(typ, payload); err != nil {
		w.pmu.Lock()
		delete(w.pending, key)
		w.pmu.Unlock()
		w.die(fmt.Errorf("send failed: %w", err))
		return nil, w.lost(err)
	}
	return w.await(ch)
}

// RunMap implements exec.Worker: ship the split, collect sealed-run
// metadata, and push the new routes to every in-flight reduce task. A
// completion that lost a speculation race (a valid route from another
// attempt already exists) is discarded; a completion racing the worker's
// own death is returned as worker-lost so the scheduler re-executes it
// somewhere the sealed runs will stay fetchable.
func (w *remoteWorker) RunMap(t exec.MapTask) (exec.MapStats, error) {
	b := binary.AppendUvarint(nil, uint64(t.Index))
	b = binary.AppendUvarint(b, uint64(t.Attempt))
	b = putRecords(b, t.Split)
	payload, err := w.call(msgMapTask, b, pendKey{msgMapDone, t.Index})
	if err != nil {
		return exec.MapStats{}, err
	}
	md, err := decodeMapDone(payload, w.addr)
	if err != nil {
		return exec.MapStats{}, fmt.Errorf("%s: %w", w, err)
	}
	if md.index != t.Index || md.attempt != t.Attempt {
		return exec.MapStats{}, fmt.Errorf("%s: map reply for task %d attempt %d, want %d/%d",
			w, md.index, md.attempt, t.Index, t.Attempt)
	}
	c := w.c
	c.mu.Lock()
	if w.isDead() {
		// The worker died in the instant after replying: its run-server is
		// gone, so the output is unusable. Requeue rather than route.
		c.mu.Unlock()
		return exec.MapStats{}, w.lost(fmt.Errorf("died before routing map %d", t.Index))
	}
	w.spilledBytes += md.spilledBytes
	w.rawSpilledBytes += md.rawSpilledBytes
	if rt, ok := c.routes[t.Index]; ok && rt.valid {
		// A concurrent attempt won (speculation, or a requeue racing a
		// still-running clone): keep the winner's route, drop this one.
		c.mu.Unlock()
		return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
	}
	c.routes[t.Index] = &mapRoute{w: w, attempt: t.Attempt, waves: md.waves, valid: true}
	// Route the completed map to every reduce task currently in flight —
	// the streamed 'm' metadata that lets reducers start fetching while
	// later maps are still running. Reduce tasks dispatched after this
	// moment get the map in their 'R' snapshot instead (both under c.mu,
	// so each reduce task sees every map exactly once per attempt).
	type push struct {
		w    *remoteWorker
		part int
	}
	var pushes []push
	for part, rw := range c.active {
		pushes = append(pushes, push{rw, part})
	}
	c.mu.Unlock()
	for _, p := range pushes {
		_ = p.w.send(msgSegPush, encodeSegPush(p.part, t.Index, t.Attempt, segsForPartition(md.waves, p.part)))
	}
	return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
}

// RunReduce implements exec.Worker: ship the partition's routing snapshot
// (later maps arrive as pushes), collect output records.
func (w *remoteWorker) RunReduce(t exec.ReduceTask) (exec.ReduceResult, error) {
	c := w.c
	c.mu.Lock()
	nMaps := c.nMaps
	routed := c.routedSegs(t.Partition)
	c.active[t.Partition] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.active[t.Partition] == w {
			delete(c.active, t.Partition)
		}
		c.mu.Unlock()
	}()
	payload, err := w.call(msgReduceTask, encodeReduceTask(t.Partition, nMaps, routed),
		pendKey{msgReduceDone, t.Partition})
	if err != nil {
		return exec.ReduceResult{}, err
	}
	d := &dec{buf: payload}
	partition := int(d.uvarint())
	res := exec.ReduceResult{
		Spills:           int(d.uvarint()),
		PeakPartialBytes: int64(d.uvarint()),
		MergePasses:      int(d.uvarint()),
	}
	spilledBytes := int64(d.uvarint())
	rawSpilledBytes := int64(d.uvarint())
	res.FetchBytes = int64(d.uvarint())
	dials := int64(d.uvarint())
	res.Output = d.records()
	if d.err != nil {
		return exec.ReduceResult{}, fmt.Errorf("%s: %w", w, d.err)
	}
	if partition != t.Partition {
		return exec.ReduceResult{}, fmt.Errorf("%s: reduce reply for partition %d, want %d", w, partition, t.Partition)
	}
	c.mu.Lock()
	w.spilledBytes += spilledBytes
	w.rawSpilledBytes += rawSpilledBytes
	if dials > w.fetchDials {
		// The worker reports its pool's lifetime dial count; the latest
		// value is the worker's job total.
		w.fetchDials = dials
	}
	c.mu.Unlock()
	return res, nil
}
