package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/shuffle"
)

// Coordinator drives multi-process job execution. It listens for worker
// registrations, then schedules map and reduce tasks over the registered
// workers through the same exec.Scheduler the in-process engine uses. By
// default the two waves overlap: reduce tasks are dispatched at job start
// and every completed map's sealed-run metadata is streamed to them as 'S'
// pushes, so reducers fetch and consume runs while later maps are still
// running — the cross-wave overlap the paper's pipelined mode is about,
// now across process boundaries. exec.Options.Staged restores the PR-3
// back-to-back waves (the baseline the overlap benchmarks compare against).
// Each worker's control connection is demultiplexed by a reader goroutine,
// so one worker can carry a map task, a reduce task and segment pushes
// concurrently.
//
// The coordinator is multi-tenant: RunJob calls may overlap, and every
// admitted job runs on the same worker pool under its own job ID. Per-job
// state (routes, active reduce tasks, spill accounting) lives in a jobRun;
// the shared SlotPool in a JobConfig bounds cross-job per-worker
// concurrency, and a pluggable exec.Policy places each job's tasks over
// live-worker snapshots. Run is the single-job special case.
//
// Worker death is a non-event, not a job failure, as long as one worker
// survives: a closed control connection or four missed heartbeats marks the
// worker dead, every admitted job's scheduler requeues its in-flight tasks
// on survivors, and completed maps whose sealed runs died with the worker
// are re-executed — with invalidation and supersede 'S' pushes re-routing
// any parked reduce task to the new attempt's segments.
// exec.Options.Speculative additionally clones straggler maps near the end
// of the wave; attempt IDs keep every duplicate or re-executed route
// idempotent, so barrier output stays byte-identical through churn (map
// tasks are deterministic: re-running one on identical input yields
// identical output bytes).
type Coordinator struct {
	ln net.Listener

	mu      sync.Mutex
	workers []*remoteWorker
	jobs    map[int]*jobRun // admitted job id -> its run state
	nextJob int

	monMu   sync.Mutex // heartbeat monitor lifecycle (refcounted by jobs)
	monRefs int
	monStop chan struct{}
}

// JobConfig shapes one job's share of a multi-tenant worker pool. The zero
// value reproduces the single-job defaults: one map slot per worker, the
// whole reduce wave dispatched up front, no cross-job cap, work-stealing
// dispatch.
type JobConfig struct {
	// MapSlots is the job's per-worker map concurrency share (default 1).
	MapSlots int
	// ReduceSlots is the job's per-worker reduce dispatch width. Default:
	// 1 when Staged, else ceil(Reducers / live workers) — the whole wave in
	// flight, overlapped reduce tasks being parked goroutines.
	ReduceSlots int
	// Pool, when set, bounds total running tasks per worker across every
	// job sharing it. All jobs sharing a Pool see the same worker indexes
	// (registration order), so the ledger lines up.
	Pool *exec.SlotPool
	// Policy, when set, routes this job's tasks over per-worker load
	// snapshots (see exec.ParsePolicy). Nil keeps work-stealing dispatch.
	Policy exec.Policy

	// JobID, when > 0, admits the job under this explicit coordinator job
	// ID instead of assigning a fresh one — the resume path: keeping the
	// journaled ID lets a returning worker's surviving per-job state (spill
	// directory, sealed runs) line up with the re-entered job. Job IDs
	// start at 1, so 0 always means "assign".
	JobID int
	// Ticket tags this job's journal records with its service submission
	// ID. Only read when Journal is set.
	Ticket uint64
	// Journal, when set, receives one encoded record per durable state
	// transition — job started, map attempt completed, reduce partition
	// completed — for the owning Service to append to its write-ahead log.
	// Called outside the coordinator lock, possibly from several task
	// goroutines at once; the appender serializes.
	Journal func(rec []byte)
	// Reattach carries a resumed job's replayed journal state: completed
	// maps are matched against returning workers' 'A' advertisements and
	// re-attached into the routing table (or re-executed when the worker or
	// its files are gone), completed reduce outputs are spliced into the
	// result without re-running, and the scheduler's attempt counter starts
	// past every journaled attempt.
	Reattach *ReattachState
}

// jobRun is one admitted job's coordinator-side state.
type jobRun struct {
	id      int
	c       *Coordinator
	name    string
	nMaps   int
	jws     []*jobWorker // per-worker proxies, by worker registration index
	ticket  uint64       // journal tag (meaningful only when journal != nil)
	journal func(rec []byte)

	// Under c.mu:
	routes map[int]*mapRoute // map task index -> its winning route
	active map[int]*jobWorker
	sched  *exec.Scheduler
}

// mapRoute is one map task's current sealed-run location: the attempt that
// produced the waves and the worker serving them. A route invalidates
// (valid=false) when its worker dies; the map index re-enters the scheduler
// and a later attempt's completion replaces the route.
type mapRoute struct {
	w       *remoteWorker
	attempt int
	waves   []waveMeta
	valid   bool
}

// pendKey identifies one awaited reply: the job, the reply kind ('m' or
// 'r'), and the task id (map index or partition).
type pendKey struct {
	job  int
	kind byte
	id   int
}

// asyncReply is one routed reply frame (or the task's failure).
type asyncReply struct {
	payload []byte
	err     error
}

// remoteWorker proxies one worker process. Writes are serialized by wmu;
// replies are routed to awaiting callers by the reader goroutine, so
// multiple tasks — across multiple jobs — can be in flight on one
// connection. Job-scoped scheduling state lives in jobWorker.
type remoteWorker struct {
	c    *Coordinator
	id   int
	name string
	conn net.Conn
	br   *bufio.Reader
	addr string // the worker's run-server

	wmu sync.Mutex // serializes frame writes

	lastBeat atomic.Int64 // unix nanos of the last frame received

	pmu     sync.Mutex
	pending map[pendKey]chan asyncReply
	dead    chan struct{} // closed when the worker is declared dead
	deadErr error

	// fetchDials and serverOpens are the worker's lifetime fetch-pool dial
	// and run-server os.Open totals from its latest reply (written under
	// c.mu); jobs snapshot them at admission to report per-job deltas.
	fetchDials  int64
	serverOpens int64

	// sealed is the worker's 'A' re-attach advertisement, captured at
	// registration and immutable after: job ID -> surviving sealed-run file
	// ID -> on-disk CRC-32C. Empty for fresh workers; a restarted
	// coordinator matches it against its replayed journal.
	sealed map[int]map[uint64]uint32
}

// jobWorker binds one remoteWorker into one job as an exec.Worker: it tags
// every frame with the job ID and keeps the job's share of the worker's
// spill/dial accounting. All fields beyond the bindings are under c.mu.
type jobWorker struct {
	j *jobRun
	w *remoteWorker

	spilledBytes    int64
	rawSpilledBytes int64
	dials           int64 // max lifetime dial count seen in this job's replies
	dialsBase       int64 // lifetime dial count when the job was admitted
	opens           int64 // max lifetime server-open count seen in this job's replies
	opensBase       int64 // lifetime server-open count when the job was admitted
}

// Listen opens the coordinator's registration listener on an ephemeral
// loopback port.
func Listen() (*Coordinator, error) { return ListenOn("127.0.0.1:0") }

// ListenOn opens the registration listener on an explicit address (e.g.
// ":0" to accept workers from other hosts; their run-servers then bind all
// interfaces too and advertise a dialable host).
func ListenOn(bind string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpexec: listen: %w", err)
	}
	return &Coordinator{ln: ln, jobs: make(map[int]*jobRun), nextJob: 1}, nil
}

// SetMinJobID places the auto-assigned job ID counter at or past id, so a
// resuming service's fresh jobs never collide with journaled IDs. Call
// before any job is admitted.
func (c *Coordinator) SetMinJobID(id int) {
	c.mu.Lock()
	if c.nextJob < id {
		c.nextJob = id
	}
	c.mu.Unlock()
}

// Addr returns the address workers dial (pass it to Serve / -worker-coord).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers returns how many workers have registered and are still live.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.isDead() {
			n++
		}
	}
	return n
}

// WaitWorkers blocks until n workers have registered or the timeout lapses.
// Each registered worker gets a reader goroutine that routes its reply
// frames until the connection closes.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		have := len(c.workers)
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		if tl, ok := c.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpexec: waiting for worker %d/%d: %w", have+1, n, err)
		}
		br := bufio.NewReader(conn)
		typ, payload, err := readMsg(br)
		if err != nil || typ != msgHello {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad registration (type %q): %v", typ, err)
		}
		d := &dec{buf: payload}
		addr := d.str()
		name := d.str()
		if d.err != nil {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad hello: %w", d.err)
		}
		// Every hello is followed by an 'A' re-attach advertisement (empty
		// for fresh workers), read synchronously before the reader goroutine
		// takes over the connection.
		typ, payload, err = readMsg(br)
		if err != nil || typ != msgReattach {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad re-attach advertisement (type %q): %v", typ, err)
		}
		sealed, err := decodeReattach(payload)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad re-attach advertisement: %w", err)
		}
		c.mu.Lock()
		w := &remoteWorker{
			c: c, id: len(c.workers), name: name, conn: conn, br: br, addr: addr,
			pending: make(map[pendKey]chan asyncReply),
			dead:    make(chan struct{}),
			sealed:  sealed,
		}
		if w.name == "" {
			w.name = fmt.Sprintf("worker-%d", w.id)
		}
		w.lastBeat.Store(time.Now().UnixNano())
		c.workers = append(c.workers, w)
		c.mu.Unlock()
		go w.readLoop()
	}
}

// Close severs every worker connection (after sending a best-effort bye)
// and stops the listener and heartbeat monitor. Workers exit when their
// control connection ends; reader goroutines exit with their connections.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	ws := append([]*remoteWorker(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range ws {
		_ = w.send(msgBye, nil)
		_ = w.conn.Close()
	}
	return c.ln.Close()
}

// Abandon simulates a coordinator crash for restart tests and benchmarks:
// the listener and every worker connection drop with no bye handshake and
// no job teardown — exactly what SIGKILL leaves behind. Workers keep their
// spill directories and sealed runs and re-dial with backoff; in-flight
// jobs on this side fail with worker-lost errors. The Coordinator is dead
// afterwards.
func (c *Coordinator) Abandon() {
	c.mu.Lock()
	ws := append([]*remoteWorker(nil), c.workers...)
	c.mu.Unlock()
	_ = c.ln.Close()
	for _, w := range ws {
		_ = w.conn.Close()
	}
}

// Run executes one job by itself: RunJob with the zero config. Kept as the
// single-tenant entry point the CLI batch mode and older tests use.
func (c *Coordinator) Run(job exec.Job, input []core.Record, opts exec.Options) (*mr.Result, error) {
	return c.RunJob(job, input, opts, JobConfig{})
}

// RunJob executes job over input across the registered workers and returns
// the assembled result. opts follow mr.Options semantics; the transport is
// forcibly the TCP run exchange (the only one that crosses process
// boundaries). Concurrent RunJob calls share the pool: each admitted job
// gets its own job ID, per-worker state and scheduler, while cfg's slot
// shares, SlotPool and Policy arbitrate the shared workers. Workers that
// die mid-job (killed process, closed control connection, missed
// heartbeats) have their tasks re-executed on survivors; the job fails only
// when no live worker remains, a task exhausts its attempt budget, or a
// task fails for a non-liveness reason.
func (c *Coordinator) RunJob(job exec.Job, input []core.Record, opts exec.Options, cfg JobConfig) (*mr.Result, error) {
	opts.Transport = shuffle.TCP
	opts.Normalize()
	if err := mr.Validate(job, opts); err != nil {
		return nil, err
	}
	c.mu.Lock()
	ws := append([]*remoteWorker(nil), c.workers...)
	c.mu.Unlock()
	live := 0
	for _, w := range ws {
		if !w.isDead() {
			live++
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("mpexec: no live workers registered")
	}
	start := time.Now()
	mapSlots := cfg.MapSlots
	if mapSlots <= 0 {
		mapSlots = 1
	}
	// Staged mode keeps one reduce slot per worker (reduce tasks do all
	// their work the moment they are dispatched). Overlapped reduce tasks
	// spend the map runway parked on segment pushes — a blocked goroutine
	// on the worker — so the whole reduce wave is dispatched up front,
	// mirroring the in-process engine's all-partitions-concurrent
	// scheduling; reducers then consume each map's output the moment it is
	// routed instead of queueing behind a single slot.
	redSlots := cfg.ReduceSlots
	if redSlots <= 0 {
		redSlots = 1
		if !opts.Staged {
			redSlots = (opts.Reducers + live - 1) / live
		}
	}
	maps := exec.SplitMaps(input, opts.Mappers)

	// Admit the job: assign its ID, build its per-worker proxies (every
	// registered worker, in registration order, so concurrent jobs sharing
	// a SlotPool index the same ledger slots; a dead worker's proxy fails
	// dispatches fast and the scheduler routes around it), and register it
	// for worker-lost fan-out.
	c.mu.Lock()
	id := c.nextJob
	if cfg.JobID > 0 {
		id = cfg.JobID
		if other := c.jobs[id]; other != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("mpexec: job ID %d already admitted", id)
		}
	}
	if c.nextJob <= id {
		c.nextJob = id + 1
	}
	jr := &jobRun{
		id: id, c: c, name: job.Name, nMaps: len(maps),
		routes: make(map[int]*mapRoute, len(maps)),
		active: make(map[int]*jobWorker),
		ticket: cfg.Ticket, journal: cfg.Journal,
	}
	jr.jws = make([]*jobWorker, len(ws))
	assignments := make([]exec.Assignment, len(ws))
	for i, w := range ws {
		jw := &jobWorker{j: jr, w: w, dials: w.fetchDials, dialsBase: w.fetchDials,
			opens: w.serverOpens, opensBase: w.serverOpens}
		jr.jws[i] = jw
		assignments[i] = exec.Assignment{W: jw, MapSlots: mapSlots, ReduceSlots: redSlots}
	}
	// Resume: re-attach journaled completed maps whose sealed runs survived
	// on a returning worker (matched by worker name and the full fileID/CRC
	// set of the map's waves, against the 'A' advertisement captured at
	// registration). Matches are pre-installed as valid routes — reduce
	// tasks see them in their 'R' snapshots — and marked done for the
	// scheduler; misses simply re-execute. Journaled reduce outputs are
	// spliced in wholesale (their bytes were journaled).
	var preMaps []int
	var preReds map[int]exec.ReduceResult
	firstAttempt := 0
	if ra := cfg.Reattach; ra != nil {
		firstAttempt = ra.FirstAttempt
		preReds = ra.reduces
		for m, jm := range ra.maps {
			if m < 0 || m >= len(maps) {
				continue
			}
			w := matchReattach(ws, id, jm)
			if w == nil {
				continue
			}
			waves := make([]waveMeta, len(jm.waves))
			for i, wv := range jm.waves {
				wv.addr = w.addr
				waves[i] = wv
			}
			jr.routes[m] = &mapRoute{w: w, attempt: jm.attempt, waves: waves, valid: true}
			preMaps = append(preMaps, m)
		}
		sort.Ints(preMaps)
	}
	// One scheduler drives both waves in both modes (Staged gates reduce
	// dispatch internally), so worker-lost requeues and map resubmissions
	// work identically during the map runway and the reduce tail.
	jr.sched = &exec.Scheduler{
		Workers:        assignments,
		OnFail:         jr.abort,
		Staged:         opts.Staged,
		Speculate:      opts.Speculative,
		SpeculateAfter: opts.SpeculativeThreshold,
		Policy:         cfg.Policy,
		Pool:           cfg.Pool,
		Resident:       jr.resident,
		PreDoneMaps:    preMaps,
		PreDoneReduces: preReds,
		FirstAttempt:   firstAttempt,
	}
	c.jobs[id] = jr
	c.mu.Unlock()
	if jr.journal != nil {
		// 's' binds the service ticket to the coordinator job ID. Re-appended
		// on resume with the same ID — replay is idempotent on it.
		jr.journal(encodeJournalStart(jr.ticket, id))
	}
	defer func() {
		c.mu.Lock()
		delete(c.jobs, id)
		c.mu.Unlock()
		// Close the job on every worker (best-effort): its spill directory
		// and sealed runs are removed once in-flight tasks drain.
		end := binary.AppendUvarint(nil, uint64(id))
		for _, w := range ws {
			if !w.isDead() {
				_ = w.send(msgJobEnd, end)
			}
		}
	}()
	// Open the job on every live worker: the 'J' frame names the user code
	// and ships the option subset task bodies must agree on. A worker whose
	// connection is already broken fails here and is declared dead; its
	// tasks go to the survivors.
	open := encodeJobStart(id, job.Name, opts)
	for _, w := range ws {
		if w.isDead() {
			continue
		}
		if err := w.send(msgJobStart, open); err != nil {
			w.die(fmt.Errorf("worker %s: open job: %w", w, err))
		}
	}
	c.startMonitor(opts.HeartbeatInterval)
	defer c.stopMonitor()

	sum, err := jr.sched.Run(maps, exec.ReduceTasks(opts.Reducers))
	if err != nil {
		return nil, fmt.Errorf("mpexec: job %q: %w", job.Name, err)
	}

	res := mr.Assemble(sum)
	c.mu.Lock()
	for _, jw := range jr.jws {
		res.SpilledBytes += jw.spilledBytes
		res.RawSpillBytes += jw.rawSpilledBytes
		if jw.dials > jw.dialsBase {
			// Approximate under concurrent jobs: the dial counter is the
			// worker pool's lifetime total, so overlapping jobs may each
			// claim a dial the other triggered (documented in DESIGN §12).
			res.FetchDials += jw.dials - jw.dialsBase
		}
		if jw.opens > jw.opensBase {
			// Same lifetime-total discipline for the run-server's handle-cache
			// misses (mr.Result.ServerOpens): approximate under concurrent
			// jobs, and an undercount when a worker's server keeps serving
			// peers after its own last reply.
			res.ServerOpens += jw.opens - jw.opensBase
		}
	}
	c.mu.Unlock()
	res.CompressedSpillBytes = res.SpilledBytes
	res.Wall = time.Since(start)
	return res, nil
}

// startMonitor runs the heartbeat monitor while at least one job is
// admitted: the first job starts it (with its heartbeat interval), the last
// job's exit stops it.
func (c *Coordinator) startMonitor(interval time.Duration) {
	c.monMu.Lock()
	defer c.monMu.Unlock()
	c.monRefs++
	if c.monRefs == 1 {
		c.monStop = make(chan struct{})
		go c.monitor(interval, c.monStop)
	}
}

func (c *Coordinator) stopMonitor() {
	c.monMu.Lock()
	defer c.monMu.Unlock()
	c.monRefs--
	if c.monRefs == 0 {
		close(c.monStop)
		c.monStop = nil
	}
}

// monitor closes the connection of any worker silent for four heartbeat
// intervals, funneling slow deaths (wedged process, dropped network) into
// the same readLoop-exit path a killed process takes.
func (c *Coordinator) monitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			c.mu.Lock()
			ws := append([]*remoteWorker(nil), c.workers...)
			c.mu.Unlock()
			for _, w := range ws {
				if w.isDead() {
					continue
				}
				if now-w.lastBeat.Load() > int64(4*interval) {
					// The readLoop unblocks with an error and declares the
					// worker dead.
					_ = w.conn.Close()
				}
			}
		}
	}
}

// workerLost reacts to a worker's death, for every admitted job: invalidate
// the routes it served, tell each job's surviving reduce tasks to drop them
// (so fetches park instead of erroring against a dead run-server), and hand
// the affected map indexes back to the job's scheduler for re-execution.
func (c *Coordinator) workerLost(w *remoteWorker) {
	type push struct {
		jw   *jobWorker
		part int
	}
	type lostJob struct {
		id       int
		jw       *jobWorker // the dead worker's proxy in this job
		sched    *exec.Scheduler
		affected []int
		pushes   []push
	}
	c.mu.Lock()
	var lost []lostJob
	for _, jr := range c.jobs {
		lj := lostJob{id: jr.id, sched: jr.sched}
		for m, rt := range jr.routes {
			if rt.valid && rt.w == w {
				rt.valid = false
				lj.affected = append(lj.affected, m)
			}
		}
		for part, ajw := range jr.active {
			if ajw.w == w {
				continue // its own reduce tasks requeue; nothing to re-route
			}
			lj.pushes = append(lj.pushes, push{ajw, part})
		}
		for _, jw := range jr.jws {
			if jw.w == w {
				lj.jw = jw
				break
			}
		}
		lost = append(lost, lj)
	}
	c.mu.Unlock()
	for _, lj := range lost {
		sort.Ints(lj.affected)
		for _, p := range lj.pushes {
			for _, m := range lj.affected {
				_ = p.jw.w.send(msgSegPush, encodeSegPush(lj.id, p.part, m, -1, nil))
			}
		}
		if lj.jw != nil {
			lj.sched.WorkerLost(lj.jw, lj.affected)
		}
	}
}

// abort tells every worker to fail this job's in-flight reduce sources (the
// scheduler's OnFail): reduce tasks blocked waiting for segment pushes that
// will never come wake up and error out, so a genuine task failure drains
// the job promptly instead of wedging the overlap. Other jobs on the pool
// are untouched.
func (jr *jobRun) abort(err error) {
	msg := binary.AppendUvarint(nil, uint64(jr.id))
	msg = putStr(msg, err.Error())
	for _, jw := range jr.jws {
		_ = jw.w.send(msgAbort, msg) // best-effort; dead workers are already failing
	}
}

// resident reports how many of this job's valid map routes worker w owns —
// the locality policy's signal for placing reduce tasks next to the sealed
// runs they will fetch.
func (jr *jobRun) resident(w int, _ exec.TaskView) int {
	c := jr.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if w < 0 || w >= len(jr.jws) {
		return 0
	}
	rw := jr.jws[w].w
	n := 0
	for _, rt := range jr.routes {
		if rt.valid && rt.w == rw {
			n++
		}
	}
	return n
}

// routedSegs snapshots partition r's segments of every completed map with a
// live route, in (map task, publish order) order — the ordering whose
// stable merge reproduces the single-process engine byte for byte.
// Invalidated maps are omitted: their replacement attempt arrives as a
// supersede push. Callers hold c.mu.
func (jr *jobRun) routedSegs(r int) []mapSegs {
	var routed []mapSegs
	for m := 0; m < jr.nMaps; m++ {
		rt, ok := jr.routes[m]
		if !ok || !rt.valid {
			continue
		}
		routed = append(routed, mapSegs{mapIndex: m, attempt: rt.attempt, segs: segsForPartition(rt.waves, r)})
	}
	return routed
}

// matchReattach finds a live worker that can serve a journaled map's sealed
// waves: same registration name as the worker that sealed them, and every
// wave's file ID present in the worker's advertisement for this job with
// the journaled seal-time CRC. Nil when no worker qualifies (the map
// re-executes).
func matchReattach(ws []*remoteWorker, jobID int, jm *journalMap) *remoteWorker {
	if len(jm.waves) == 0 {
		return nil // nothing to fetch; re-running is cheaper than trusting
	}
	for _, w := range ws {
		if w.isDead() || w.name != jm.worker {
			continue
		}
		files := w.sealed[jobID]
		ok := len(files) > 0
		for _, wv := range jm.waves {
			if crc, have := files[wv.fileID]; !have || crc != wv.crc {
				ok = false
				break
			}
		}
		if ok {
			return w
		}
	}
	return nil
}

// segsForPartition projects one map task's waves onto partition r.
func segsForPartition(waves []waveMeta, r int) []shuffle.Segment {
	var segs []shuffle.Segment
	for _, w := range waves {
		if seg, ok := w.segmentOf(r); ok {
			segs = append(segs, seg)
		}
	}
	return segs
}

// String implements exec.Worker.
func (w *remoteWorker) String() string { return fmt.Sprintf("%s@%s", w.name, w.addr) }

// isDead reports whether the worker has been declared dead.
func (w *remoteWorker) isDead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

// readLoop routes every reply frame from the worker to its awaiting task
// until the connection ends, at which point the worker is declared dead:
// in-flight and future awaits fail with a WorkerLostError and every
// admitted job re-executes what the worker was serving.
func (w *remoteWorker) readLoop() {
	for {
		typ, payload, err := readMsg(w.br)
		if err != nil {
			// A dead worker (killed mid-task) surfaces here as EOF/reset.
			w.die(fmt.Errorf("connection lost: %w", err))
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		switch typ {
		case msgHeartbeat:
			// Liveness only; lastBeat already updated.
		case msgMapDone, msgReduceDone:
			d := &dec{buf: payload}
			job := int(d.uvarint())
			id := int(d.uvarint())
			if d.err != nil {
				w.die(fmt.Errorf("corrupt reply: %w", d.err))
				return
			}
			w.deliver(pendKey{job, typ, id}, asyncReply{payload: payload})
		case msgError:
			job, kind, id, msg, err := decodeTaskError(payload)
			if err != nil {
				w.die(fmt.Errorf("corrupt error frame: %w", err))
				return
			}
			w.deliver(pendKey{job, kind, id}, asyncReply{err: fmt.Errorf("%s: %s", w, msg)})
		default:
			w.die(fmt.Errorf("unexpected frame %q", typ))
			return
		}
	}
}

// die latches the worker's death, wakes every awaiting task, and kicks the
// coordinator's re-execution path. Idempotent.
func (w *remoteWorker) die(err error) {
	w.pmu.Lock()
	select {
	case <-w.dead:
		w.pmu.Unlock()
		return
	default:
	}
	w.deadErr = err
	close(w.dead)
	w.pmu.Unlock()
	_ = w.conn.Close()
	w.c.workerLost(w)
}

// deliver routes one reply to its awaiting task (stray replies are
// dropped — the await may have failed already via die).
func (w *remoteWorker) deliver(key pendKey, r asyncReply) {
	w.pmu.Lock()
	ch, ok := w.pending[key]
	delete(w.pending, key)
	w.pmu.Unlock()
	if ok {
		ch <- r // buffered: never blocks
	}
}

// expect registers interest in one reply before its request is sent (so a
// fast reply cannot race the registration).
func (w *remoteWorker) expect(key pendKey) chan asyncReply {
	ch := make(chan asyncReply, 1)
	w.pmu.Lock()
	w.pending[key] = ch
	w.pmu.Unlock()
	return ch
}

// send writes one frame, serialized against concurrent task requests,
// pushes and aborts.
func (w *remoteWorker) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(w.conn, typ, payload)
}

// lost wraps err so the scheduler classifies it as a dead worker (requeue)
// rather than a task failure (abort).
func (w *remoteWorker) lost(err error) error {
	return &exec.WorkerLostError{Worker: w.String(), Err: err}
}

// await blocks for the expected reply or the worker's death.
func (w *remoteWorker) await(ch chan asyncReply) ([]byte, error) {
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-w.dead:
		return nil, w.lost(w.deadErr)
	}
}

// call runs one request/reply exchange for the task identified by key.
func (w *remoteWorker) call(typ byte, payload []byte, key pendKey) ([]byte, error) {
	ch := w.expect(key)
	if err := w.send(typ, payload); err != nil {
		w.pmu.Lock()
		delete(w.pending, key)
		w.pmu.Unlock()
		w.die(fmt.Errorf("send failed: %w", err))
		return nil, w.lost(err)
	}
	return w.await(ch)
}

// String implements exec.Worker.
func (jw *jobWorker) String() string { return jw.w.String() }

// RunMap implements exec.Worker: ship the split, collect sealed-run
// metadata, and push the new routes to every in-flight reduce task of this
// job. A completion that lost a speculation race (a valid route from
// another attempt already exists) is discarded; a completion racing the
// worker's own death is returned as worker-lost so the scheduler
// re-executes it somewhere the sealed runs will stay fetchable.
func (jw *jobWorker) RunMap(t exec.MapTask) (exec.MapStats, error) {
	w, jr, c := jw.w, jw.j, jw.w.c
	if w.isDead() {
		// A job admitted after this worker died still lists it (stable pool
		// indexes); fail the dispatch fast so the scheduler routes around it.
		return exec.MapStats{}, w.lost(w.deadErr)
	}
	b := binary.AppendUvarint(nil, uint64(jr.id))
	b = binary.AppendUvarint(b, uint64(t.Index))
	b = binary.AppendUvarint(b, uint64(t.Attempt))
	b = putRecords(b, t.Split)
	payload, err := w.call(msgMapTask, b, pendKey{jr.id, msgMapDone, t.Index})
	if err != nil {
		return exec.MapStats{}, err
	}
	md, err := decodeMapDone(payload, w.addr)
	if err != nil {
		return exec.MapStats{}, fmt.Errorf("%s: %w", w, err)
	}
	if md.job != jr.id || md.index != t.Index || md.attempt != t.Attempt {
		return exec.MapStats{}, fmt.Errorf("%s: map reply for job %d task %d attempt %d, want %d/%d/%d",
			w, md.job, md.index, md.attempt, jr.id, t.Index, t.Attempt)
	}
	c.mu.Lock()
	if w.isDead() {
		// The worker died in the instant after replying: its run-server is
		// gone, so the output is unusable. Requeue rather than route.
		c.mu.Unlock()
		return exec.MapStats{}, w.lost(fmt.Errorf("died before routing map %d", t.Index))
	}
	jw.spilledBytes += md.spilledBytes
	jw.rawSpilledBytes += md.rawSpilledBytes
	jw.noteOpens(md.serverOpens)
	if rt, ok := jr.routes[t.Index]; ok && rt.valid {
		// A concurrent attempt won (speculation, or a requeue racing a
		// still-running clone): keep the winner's route, drop this one.
		c.mu.Unlock()
		return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
	}
	jr.routes[t.Index] = &mapRoute{w: w, attempt: t.Attempt, waves: md.waves, valid: true}
	// Route the completed map to every reduce task of this job currently in
	// flight — the streamed 'm' metadata that lets reducers start fetching
	// while later maps are still running. Reduce tasks dispatched after
	// this moment get the map in their 'R' snapshot instead (both under
	// c.mu, so each reduce task sees every map exactly once per attempt).
	type push struct {
		jw   *jobWorker
		part int
	}
	var pushes []push
	for part, ajw := range jr.active {
		pushes = append(pushes, push{ajw, part})
	}
	c.mu.Unlock()
	if jr.journal != nil {
		// Journal the completed attempt (with its wave file IDs and seal-time
		// CRCs — the re-attach identity) before routing it anywhere.
		jr.journal(encodeJournalMapDone(jr.ticket, t.Index, t.Attempt, w.name, md))
	}
	for _, p := range pushes {
		_ = p.jw.w.send(msgSegPush, encodeSegPush(jr.id, p.part, t.Index, t.Attempt, segsForPartition(md.waves, p.part)))
	}
	return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
}

// RunReduce implements exec.Worker: ship the partition's routing snapshot
// (later maps arrive as pushes), collect output records.
func (jw *jobWorker) RunReduce(t exec.ReduceTask) (exec.ReduceResult, error) {
	w, jr, c := jw.w, jw.j, jw.w.c
	if w.isDead() {
		return exec.ReduceResult{}, w.lost(w.deadErr)
	}
	c.mu.Lock()
	routed := jr.routedSegs(t.Partition)
	jr.active[t.Partition] = jw
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if jr.active[t.Partition] == jw {
			delete(jr.active, t.Partition)
		}
		c.mu.Unlock()
	}()
	payload, err := w.call(msgReduceTask, encodeReduceTask(jr.id, t.Partition, jr.nMaps, routed),
		pendKey{jr.id, msgReduceDone, t.Partition})
	if err != nil {
		return exec.ReduceResult{}, err
	}
	d := &dec{buf: payload}
	job := int(d.uvarint())
	partition := int(d.uvarint())
	res := exec.ReduceResult{
		Spills:           int(d.uvarint()),
		PeakPartialBytes: int64(d.uvarint()),
		MergePasses:      int(d.uvarint()),
	}
	spilledBytes := int64(d.uvarint())
	rawSpilledBytes := int64(d.uvarint())
	res.FetchBytes = int64(d.uvarint())
	dials := int64(d.uvarint())
	opens := int64(d.uvarint())
	res.Output = d.records()
	if d.err != nil {
		return exec.ReduceResult{}, fmt.Errorf("%s: %w", w, d.err)
	}
	if job != jr.id || partition != t.Partition {
		return exec.ReduceResult{}, fmt.Errorf("%s: reduce reply for job %d partition %d, want %d/%d",
			w, job, partition, jr.id, t.Partition)
	}
	c.mu.Lock()
	jw.spilledBytes += spilledBytes
	jw.rawSpilledBytes += rawSpilledBytes
	if dials > w.fetchDials {
		// The worker reports its pool's lifetime dial count; keep the
		// monotonic maximum for later jobs' baselines.
		w.fetchDials = dials
	}
	if dials > jw.dials {
		jw.dials = dials
	}
	jw.noteOpens(opens)
	c.mu.Unlock()
	if jr.journal != nil {
		// Reduce output is final the moment the reply lands (reduce tasks are
		// never speculated); journal the records so a resumed job splices
		// them in instead of re-running the partition.
		jr.journal(encodeJournalReduceDone(jr.ticket, t.Partition, res))
	}
	return res, nil
}

// noteOpens folds one reply's lifetime server-open count into the worker's
// and the job's monotonic maxima (caller holds c.mu) — the same baseline
// discipline FetchDials uses, surfaced as mr.Result.ServerOpens.
func (jw *jobWorker) noteOpens(opens int64) {
	if opens > jw.w.serverOpens {
		jw.w.serverOpens = opens
	}
	if opens > jw.opens {
		jw.opens = opens
	}
}
