package mpexec_test

// Multi-tenant job service tests: real worker subprocesses (the registry
// variant of the helper-process pattern) carrying several admitted jobs
// concurrently on one pool.

import (
	"errors"
	osexec "os/exec"
	"testing"
	"time"

	"blmr/internal/apps"
	"blmr/internal/core"
	blexec "blmr/internal/exec"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

// serviceCluster spins up a coordinator plus n registry workers and a
// service over them.
func serviceCluster(t testing.TB, n int, cfg mpexec.ServiceConfig, env ...string) (*mpexec.Service, []*osexec.Cmd) {
	t.Helper()
	c, err := mpexec.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cmds := spawnWorkers(t, c.Addr(), n, append([]string{"MPEXEC_REGISTRY=1"}, env...)...)
	if err := c.WaitWorkers(n, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	s, err := mpexec.NewService(c, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, cmds
}

// submission is one test job: the app, its input, and its options.
type submission struct {
	app   apps.App
	input []core.Record
	opts  blexec.Options
}

// threeJobs is the canonical heterogeneous stream: wordcount and sort in
// barrier mode plus a pipelined wordcount, with differing reducer counts
// and spill budgets — every option the 'J' frame must carry per job.
func threeJobs() []submission {
	return []submission{
		{apps.WordCount(), workload.Text(31, 1500, 300, 8),
			blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier}},
		{apps.Sort(), workload.Text(32, 1200, 250, 8),
			blexec.Options{Mappers: 3, Reducers: 2, Mode: blexec.Barrier, SpillBytes: 8 << 10}},
		{apps.WordCount(), workload.Text(33, 1500, 300, 8),
			blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Pipelined}},
	}
}

// checkAgainstReference runs the same job in-process and requires
// byte-identical output for barrier mode (pipelined compares multisets via
// sorted copies upstream; here all barrier submissions are exact).
func checkAgainstReference(t *testing.T, tag string, sub submission, res *mr.Result) {
	t.Helper()
	ref, err := mr.Run(jobFor(sub.app), sub.input, sub.opts)
	if err != nil {
		t.Fatalf("%s: reference run: %v", tag, err)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%s: %d records vs %d reference", tag, len(res.Output), len(ref.Output))
	}
	exact := sub.opts.Mode == blexec.Barrier
	if !exact {
		return // pipelined record order is timing-dependent; count suffices here
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("%s: record %d differs: %v vs %v", tag, i, res.Output[i], ref.Output[i])
		}
	}
}

// TestServiceConcurrentJobsByteIdentical: three overlapping heterogeneous
// jobs on one three-worker pool, under a placement policy and a shared slot
// ledger — every barrier job's output byte-identical to the in-process
// engine. The core multi-tenancy acceptance check.
func TestServiceConcurrentJobsByteIdentical(t *testing.T) {
	s, _ := serviceCluster(t, 3, mpexec.ServiceConfig{
		MaxConcurrent: 3, Policy: "least-loaded",
	})
	subs := threeJobs()
	tickets := make([]*mpexec.Ticket, len(subs))
	for i, sub := range subs {
		tk, err := s.Submit(jobFor(sub.app), sub.input, sub.opts)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
		checkAgainstReference(t, subs[i].app.Name, subs[i], res)
	}
}

// TestServiceSurvivesKillMidStream: SIGKILL one worker while three admitted
// jobs are in flight — every job completes and every barrier output stays
// byte-identical. Churn hits the pool, not any one tenant.
func TestServiceSurvivesKillMidStream(t *testing.T) {
	s, cmds := serviceCluster(t, 3, mpexec.ServiceConfig{
		MaxConcurrent: 3, Policy: "least-loaded",
	}, "MPEXEC_SLOW=1")
	subs := threeJobs()
	tickets := make([]*mpexec.Ticket, len(subs))
	for i, sub := range subs {
		tk, err := s.Submit(jobFor(sub.app), sub.input, sub.opts)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	time.Sleep(300 * time.Millisecond) // let all three jobs get mid-flight
	_ = cmds[0].Process.Kill()
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("job %d failed despite surviving workers: %v", i, err)
		}
		checkAgainstReference(t, subs[i].app.Name, subs[i], res)
	}
}

// TestServiceJobFailureIsolated: a job whose name no worker resolves fails
// after its attempt budget — while a concurrent healthy job completes
// byte-identically. One tenant's failure cannot leak into another.
func TestServiceJobFailureIsolated(t *testing.T) {
	s, _ := serviceCluster(t, 2, mpexec.ServiceConfig{MaxConcurrent: 2})
	bad := jobFor(apps.WordCount())
	bad.Name = "no-such-app"
	badTk, err := s.Submit(bad, workload.Text(41, 300, 100, 8),
		blexec.Options{Mappers: 2, Reducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	good := threeJobs()[0]
	goodTk, err := s.Submit(jobFor(good.app), good.input, good.opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badTk.Wait(); err == nil {
		t.Fatal("unresolvable job must fail")
	}
	res, err := goodTk.Wait()
	if err != nil {
		t.Fatalf("healthy job caught neighbor's failure: %v", err)
	}
	checkAgainstReference(t, "wordcount", good, res)
}

// TestServiceAdmissionControl: with one run slot and a one-deep queue, a
// third overlapping submission is refused with ErrQueueFull (backpressure),
// and a closed service refuses with ErrServiceClosed.
func TestServiceAdmissionControl(t *testing.T) {
	s, _ := serviceCluster(t, 2, mpexec.ServiceConfig{
		MaxQueued: 1, MaxConcurrent: 1,
	}, "MPEXEC_SLOW=1")
	subs := threeJobs()
	first, err := s.Submit(jobFor(subs[0].app), subs[0].input, subs[0].opts)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the dispatcher has moved the first job from queue to
	// running; the queue is then empty with the run slot held.
	deadline := time.Now().Add(10 * time.Second)
	for {
		q, r := s.Stats()
		if q == 0 && r == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (queued=%d running=%d)", q, r)
		}
		time.Sleep(5 * time.Millisecond)
	}
	second, err := s.Submit(jobFor(subs[1].app), subs[1].input, subs[1].opts)
	if err != nil {
		t.Fatalf("second submission should queue: %v", err)
	}
	if _, err := s.Submit(jobFor(subs[2].app), subs[2].input, subs[2].opts); !errors.Is(err, mpexec.ErrQueueFull) {
		t.Fatalf("third submission = %v, want ErrQueueFull", err)
	}
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close() // idempotent with the cleanup; drains admitted jobs
	if _, err := s.Submit(jobFor(subs[2].app), subs[2].input, subs[2].opts); !errors.Is(err, mpexec.ErrServiceClosed) {
		t.Fatalf("submission after close = %v, want ErrServiceClosed", err)
	}
}
