package metrics

import (
	"strings"
	"testing"
)

func TestTimelineCounts(t *testing.T) {
	c := NewCollector()
	t1 := c.TaskStart(StageMap, 0)
	t2 := c.TaskStart(StageMap, 1)
	c.TaskEnd(t1, 3)
	t3 := c.TaskStart(StageReduce, 2)
	c.TaskEnd(t2, 4)
	c.TaskEnd(t3, 5)
	tl := c.Timeline(StageMap, 1)
	// t=0: 1 map; t=1: 2; t=2: 2; t=3: 1 (t1 ended); t=4: 0.
	want := []int{1, 2, 2, 1, 0, 0}
	for i, w := range want {
		if i >= len(tl) {
			t.Fatalf("timeline too short: %v", tl)
		}
		if tl[i].Count != w {
			t.Fatalf("t=%d count=%d want %d (tl=%v)", i, tl[i].Count, w, tl)
		}
	}
	rtl := c.Timeline(StageReduce, 1)
	if rtl[2].Count != 1 || rtl[4].Count != 1 || rtl[5].Count != 0 {
		t.Fatalf("reduce timeline %v", rtl)
	}
}

func TestStageBounds(t *testing.T) {
	c := NewCollector()
	a := c.TaskStart(StageMap, 2)
	b := c.TaskStart(StageMap, 5)
	c.TaskEnd(a, 7)
	c.TaskEnd(b, 11)
	first, last, ok := c.StageBounds(StageMap)
	if !ok || first != 2 || last != 11 {
		t.Fatalf("bounds = %v %v %v", first, last, ok)
	}
	if _, _, ok := c.StageBounds(StageSort); ok {
		t.Fatal("sort never ran")
	}
}

func TestCloseAll(t *testing.T) {
	c := NewCollector()
	c.TaskStart(StageReduce, 0)
	c.TaskStart(StageReduce, 1)
	c.CloseAll(9)
	for _, s := range c.Spans() {
		if s.End != 9 {
			t.Fatalf("span end = %v", s.End)
		}
	}
}

func TestTaskEndUnknownTokenIsNoop(t *testing.T) {
	c := NewCollector()
	c.TaskEnd(42, 1) // must not panic
}

func TestMemSamplesCoalesce(t *testing.T) {
	c := NewCollector()
	c.MemSample(0, 1, 100)
	c.MemSample(0, 2, 100) // unchanged, coalesced
	c.MemSample(0, 3, 200)
	s := c.MemSeries(0)
	if len(s) != 2 {
		t.Fatalf("series = %v", s)
	}
	if c.PeakMem() != 200 {
		t.Fatalf("peak = %d", c.PeakMem())
	}
}

func TestSortedReducerIDs(t *testing.T) {
	c := NewCollector()
	c.MemSample(5, 0, 1)
	c.MemSample(1, 0, 1)
	c.MemSample(3, 0, 1)
	ids := c.SortedReducerIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestRenderTimeline(t *testing.T) {
	c := NewCollector()
	tok := c.TaskStart(StageMap, 0)
	c.TaskEnd(tok, 2)
	out := RenderTimeline(c, []Stage{StageMap, StageReduce}, 1)
	if !strings.Contains(out, "map") || !strings.Contains(out, "reduce") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few rows:\n%s", out)
	}
}
