// Package metrics collects per-job observability: task-count timelines by
// stage (Figure 4's progress plots) and per-reducer heap usage over time
// (Figure 5's memory plots).
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Stage labels a task for timeline accounting.
type Stage string

// Stage names used by the engines.
const (
	StageMap     Stage = "map"
	StageShuffle Stage = "shuffle"
	StageSort    Stage = "sort"
	StageReduce  Stage = "reduce"
	StageOutput  Stage = "output"
)

// Span is one task's activity interval in one stage.
type Span struct {
	Stage Stage
	Start float64
	End   float64 // +Inf until closed
}

// Collector accumulates spans and memory samples for one job run.
// Not safe for concurrent use; the simulation kernel is single-threaded.
type Collector struct {
	spans []*Span
	open  map[int]*Span // token -> span
	next  int

	mem map[int][]MemSample // reducer id -> samples
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{open: make(map[int]*Span), mem: make(map[int][]MemSample)}
}

// TaskStart opens a span and returns a token to close it with.
func (c *Collector) TaskStart(stage Stage, now float64) int {
	c.next++
	s := &Span{Stage: stage, Start: now, End: -1}
	c.spans = append(c.spans, s)
	c.open[c.next] = s
	return c.next
}

// TaskEnd closes the span for token at time now.
func (c *Collector) TaskEnd(token int, now float64) {
	s, ok := c.open[token]
	if !ok {
		return
	}
	s.End = now
	delete(c.open, token)
}

// CloseAll force-closes any still-open spans at time now (job abort).
func (c *Collector) CloseAll(now float64) {
	for tok, s := range c.open {
		s.End = now
		delete(c.open, tok)
	}
}

// Spans returns copies of all recorded spans.
func (c *Collector) Spans() []Span {
	out := make([]Span, len(c.spans))
	for i, s := range c.spans {
		out[i] = *s
	}
	return out
}

// MemSample is one reducer heap measurement.
type MemSample struct {
	T     float64
	Bytes int64
}

// MemSample records reducer r's partial-result footprint at time t.
func (c *Collector) MemSample(r int, t float64, bytes int64) {
	samples := c.mem[r]
	// Coalesce: skip if unchanged from the previous sample.
	if n := len(samples); n > 0 && samples[n-1].Bytes == bytes {
		return
	}
	c.mem[r] = append(samples, MemSample{T: t, Bytes: bytes})
}

// MemSeries returns reducer r's samples in time order.
func (c *Collector) MemSeries(r int) []MemSample {
	return append([]MemSample(nil), c.mem[r]...)
}

// PeakMem returns the maximum sampled footprint across all reducers.
func (c *Collector) PeakMem() int64 {
	var peak int64
	for _, samples := range c.mem {
		for _, s := range samples {
			if s.Bytes > peak {
				peak = s.Bytes
			}
		}
	}
	return peak
}

// Point is one timeline step: the number of tasks of a stage active at T.
type Point struct {
	T     float64
	Count int
}

// Timeline computes the count of active spans of the given stage sampled
// every step seconds from 0 through the last span end.
func (c *Collector) Timeline(stage Stage, step float64) []Point {
	if step <= 0 {
		step = 1
	}
	var end float64
	for _, s := range c.spans {
		if s.End > end {
			end = s.End
		}
	}
	var out []Point
	for t := 0.0; t <= end+step/2; t += step {
		n := 0
		for _, s := range c.spans {
			if s.Stage == stage && s.Start <= t && t < s.End {
				n++
			}
		}
		out = append(out, Point{T: t, Count: n})
	}
	return out
}

// StageBounds returns the first start and last end across spans of a stage;
// ok is false if the stage never ran.
func (c *Collector) StageBounds(stage Stage) (first, last float64, ok bool) {
	first, last = -1, -1
	for _, s := range c.spans {
		if s.Stage != stage {
			continue
		}
		if first < 0 || s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	return first, last, first >= 0
}

// RenderTimeline produces a textual plot (one row per sample step, one
// column per stage) resembling the paper's Figure 4 panels.
func RenderTimeline(c *Collector, stages []Stage, step float64) string {
	series := make([][]Point, len(stages))
	maxLen := 0
	for i, st := range stages {
		series[i] = c.Timeline(st, step)
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "t(s)")
	for _, st := range stages {
		fmt.Fprintf(&b, " %12s", st)
	}
	b.WriteByte('\n')
	for row := 0; row < maxLen; row++ {
		fmt.Fprintf(&b, "%10.1f", float64(row)*step)
		for i := range stages {
			v := 0
			if row < len(series[i]) {
				v = series[i][row].Count
			}
			fmt.Fprintf(&b, " %12d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedReducerIDs lists reducers with memory samples, ascending.
func (c *Collector) SortedReducerIDs() []int {
	ids := make([]int, 0, len(c.mem))
	for id := range c.mem {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
