package mr

// Transport equivalence suite for the exec/shuffle split: every app in
// internal/apps must produce the same output over all three shuffle
// transports — in-process, spill-run exchange, loopback TCP — in both
// execution modes. Barrier output must be byte-identical across transports
// (the (map task, publish order) run ordering reproduces the in-memory
// stable sort exactly, local file or fetched section alike); pipelined
// output must match as sorted multisets (order-sensitive GA compares record
// counts, as in the batching suite). Run under -race in CI: the suite
// doubles as a race exercise of concurrent sealing, serving and fetching.

import (
	"fmt"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/shuffle"
	"blmr/internal/workload"
)

var allTransports = []shuffle.Kind{shuffle.InProc, shuffle.SpillExchange, shuffle.TCP}

func TestTransportEquivalence(t *testing.T) {
	for _, tc := range equivalenceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mappers := 4
			if tc.orderSensitive {
				mappers = 1
			}
			ref, err := Run(jobFor(tc.app), tc.input,
				Options{Mappers: mappers, Reducers: tc.reducers, Mode: Barrier})
			if err != nil {
				t.Fatalf("in-proc barrier reference: %v", err)
			}
			for _, kind := range allTransports {
				for _, spill := range []int64{0, 16 << 10} {
					name := fmt.Sprintf("%v-spill%d", kind, spill)
					res, err := Run(jobFor(tc.app), tc.input, Options{
						Mappers: mappers, Reducers: tc.reducers, Mode: Barrier,
						Transport: kind, SpillBytes: spill, SpillDir: t.TempDir(),
					})
					if err != nil {
						t.Fatalf("barrier %s: %v", name, err)
					}
					requireExact(t, tc.name+"-barrier-"+name, ref.Output, res.Output)
					if res.ShuffleRecords != ref.ShuffleRecords {
						t.Fatalf("barrier %s: shuffled %d records, want %d",
							name, res.ShuffleRecords, ref.ShuffleRecords)
					}
					if kind != shuffle.InProc && res.ShuffleRecords > 0 && res.SpilledBytes == 0 {
						t.Fatalf("barrier %s: run exchange sealed nothing", name)
					}
				}
				res, err := Run(jobFor(tc.app), tc.input, Options{
					Mappers: mappers, Reducers: tc.reducers, Mode: Pipelined,
					Transport: kind, SpillDir: t.TempDir(), BatchSize: 64,
				})
				if err != nil {
					t.Fatalf("pipelined %v: %v", kind, err)
				}
				if tc.orderSensitive {
					if len(res.Output) != len(ref.Output) {
						t.Fatalf("pipelined %v: %d records vs barrier's %d",
							kind, len(res.Output), len(ref.Output))
					}
					continue
				}
				requireSame(t, tc.name+"-pipelined-"+kind.String(), ref.Output, res.Output)
			}
		})
	}
}

// TestServerOpensCounter: over the TCP exchange, a spill budget that seals
// many waves makes reduce tasks fetch far more sections than there are
// sealed files — the run-server's handle cache must keep Result.ServerOpens
// at the file count, far under the fetched-section count.
func TestServerOpensCounter(t *testing.T) {
	input := workload.Text(21, 6000, 700, 8)
	res, err := Run(jobFor(apps.WordCount()), input, Options{
		Mappers: 4, Reducers: 4, Mode: Barrier, Transport: shuffle.TCP,
		SpillBytes: 8 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerOpens == 0 {
		t.Fatal("TCP exchange reported zero server opens")
	}
	// Every sealed wave is one file serving one section per partition, so
	// fetched sections ≈ opens × reducers; the counter must track files, not
	// sections.
	sections := int64(res.Spills) * 4
	if res.ServerOpens*2 > sections {
		t.Fatalf("ServerOpens=%d not ≪ %d fetched sections (handle cache not engaged?)",
			res.ServerOpens, sections)
	}
	t.Logf("handle cache: %d opens for ~%d fetched sections", res.ServerOpens, sections)
}

// TestMergeFanIn: a tiny spill budget over a fan-in cap of 2 forces
// multi-pass merging; the multi-pass output must stay byte-identical to the
// single-pass (and in-memory) barrier output, on every transport.
func TestMergeFanIn(t *testing.T) {
	input := workload.Text(13, 3000, 600, 8)
	ref, err := Run(jobFor(apps.WordCount()), input,
		Options{Mappers: 4, Reducers: 3, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allTransports {
		res, err := Run(jobFor(apps.WordCount()), input, Options{
			Mappers: 4, Reducers: 3, Mode: Barrier, Transport: kind,
			SpillBytes: 4 << 10, SpillDir: t.TempDir(), MergeFanIn: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		requireExact(t, "fanin-"+kind.String(), ref.Output, res.Output)
		if res.MergePasses == 0 {
			t.Fatalf("%v: expected multi-pass merging at fan-in 2 (spills=%d)", kind, res.Spills)
		}
	}
}

// TestMergeFanInPipelinedStore: the fan-in cap composes with pipelined
// spill stores (the external merge inside store.SpillStore is per-store and
// unaffected; this guards output correctness of the combination).
func TestMergeFanInPipelinedStore(t *testing.T) {
	input := workload.UniformKeys(5, 30_000, 1<<40)
	ref, err := Run(jobFor(apps.Sort()), input,
		Options{Mappers: 4, Reducers: 2, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(jobFor(apps.Sort()), input, Options{
		Mappers: 4, Reducers: 2, Mode: Pipelined, Transport: shuffle.TCP,
		SpillBytes: 16 << 10, SpillDir: t.TempDir(), MergeFanIn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "fanin-pipelined", ref.Output, res.Output)
	if res.Spills == 0 {
		t.Fatal("expected pipelined store spills at a 16KiB budget")
	}
}

// TestTransportCombiner: map-side combining composes with the run-exchange
// transports (each published wave is combined before sealing).
func TestTransportCombiner(t *testing.T) {
	input := workload.Text(9, 4000, 500, 10)
	app := apps.WordCount()
	plain := jobFor(app)
	combined := jobFor(app)
	combined.Combiner = app.Merger
	ref, err := Run(plain, input, Options{Mappers: 4, Reducers: 4, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []shuffle.Kind{shuffle.SpillExchange, shuffle.TCP} {
		for _, mode := range []Mode{Barrier, Pipelined} {
			res, err := Run(combined, input, Options{
				Mappers: 4, Reducers: 4, Mode: mode, Transport: kind,
				SpillDir: t.TempDir(),
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", kind, mode, err)
			}
			requireSame(t, "combined-"+kind.String(), ref.Output, res.Output)
			if res.ShuffleRecords >= ref.ShuffleRecords {
				t.Fatalf("%v/%v: combiner did not cut shuffle volume: %d >= %d",
					kind, mode, res.ShuffleRecords, ref.ShuffleRecords)
			}
		}
	}
}
