package mr

// Equivalence and memory-bound suite for the external (disk-spilling)
// shuffle: for every app in internal/apps, both modes must produce the same
// output with SpillBytes unlimited (0), 64KiB and 4KiB — barrier output
// byte-identical (the external merge reproduces the in-memory stable sort
// exactly), pipelined output equal as sorted multisets. Run under -race in
// CI: the suite doubles as a race exercise of concurrent RunDir use.

import (
	"testing"
	"time"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// spillBudgets: unlimited, then budgets far below each non-tiny app's
// intermediate volume.
var spillBudgets = []int64{0, 64 << 10, 4 << 10}

// mustSpillAt4K names the apps whose intermediate data is guaranteed to
// dwarf a 4KiB budget in barrier mode, so the suite can assert the spill
// path actually engaged rather than silently staying in memory.
var mustSpillAt4K = map[string]bool{
	"grep": true, "sort": true, "wordcount": true, "knn": true, "lastfm": true, "ga": true,
}

// requireExact asserts two outputs are byte-identical in order — the
// barrier-mode guarantee (deterministic reducer concat + key-sorted,
// arrival-stable records within each reducer).
func requireExact(t *testing.T, name string, a, b []core.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d records", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: record %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestSpillEquivalence(t *testing.T) {
	for _, tc := range equivalenceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mappers := 4
			if tc.orderSensitive {
				mappers = 1
			}
			var refBarrier, refPipelined *Result
			for _, sb := range spillBudgets {
				res, err := Run(jobFor(tc.app), tc.input, Options{
					Mappers: mappers, Reducers: tc.reducers, Mode: Barrier,
					SpillBytes: sb, SpillDir: t.TempDir(),
				})
				if err != nil {
					t.Fatalf("barrier spill=%d: %v", sb, err)
				}
				if sb == 0 {
					refBarrier = res
					continue
				}
				// The external merge must reproduce the in-memory barrier
				// output exactly, not just as a multiset.
				requireExact(t, tc.name+"-barrier", refBarrier.Output, res.Output)
				if res.ShuffleRecords != refBarrier.ShuffleRecords {
					t.Fatalf("barrier spill=%d: shuffled %d records, want %d",
						sb, res.ShuffleRecords, refBarrier.ShuffleRecords)
				}
				if sb == 4<<10 && mustSpillAt4K[tc.name] {
					if res.Spills == 0 || res.SpilledBytes == 0 {
						t.Fatalf("barrier spill=%d: expected real spills, got %d runs / %d bytes",
							sb, res.Spills, res.SpilledBytes)
					}
				}
			}
			for _, sb := range spillBudgets {
				res, err := Run(jobFor(tc.app), tc.input, Options{
					Mappers: mappers, Reducers: tc.reducers, Mode: Pipelined,
					SpillBytes: sb, SpillDir: t.TempDir(), BatchSize: 64,
				})
				if err != nil {
					t.Fatalf("pipelined spill=%d: %v", sb, err)
				}
				if tc.orderSensitive {
					if len(res.Output) != len(refBarrier.Output) {
						t.Fatalf("pipelined spill=%d: %d records vs barrier's %d",
							sb, len(res.Output), len(refBarrier.Output))
					}
					continue
				}
				requireSame(t, tc.name+"-pipelined-vs-barrier", refBarrier.Output, res.Output)
				if refPipelined == nil {
					refPipelined = res
					continue
				}
				requireSame(t, tc.name+"-pipelined-vs-unlimited", refPipelined.Output, res.Output)
			}
		})
	}
}

// TestSpillCombinerEquivalence: the combiner composes with spilling — each
// sealed run is combined before encoding, so a key may reach the reducer as
// several pre-folded partials; the fold must still converge to the same
// totals, and the shuffle must still shrink.
func TestSpillCombinerEquivalence(t *testing.T) {
	input := workload.Text(9, 4000, 500, 10)
	app := apps.WordCount()
	plain := jobFor(app)
	combined := jobFor(app)
	combined.Combiner = app.Merger

	ref, err := Run(plain, input, Options{Mappers: 4, Reducers: 4, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Barrier, Pipelined} {
		for _, sb := range []int64{16 << 10, 4 << 10} {
			res, err := Run(combined, input, Options{
				Mappers: 4, Reducers: 4, Mode: mode,
				SpillBytes: sb, SpillDir: t.TempDir(),
			})
			if err != nil {
				t.Fatalf("mode=%d spill=%d: %v", mode, sb, err)
			}
			requireSame(t, "combined-spill", ref.Output, res.Output)
			if res.ShuffleRecords >= ref.ShuffleRecords {
				t.Fatalf("mode=%d spill=%d: combiner did not cut shuffle volume: %d >= %d",
					mode, sb, res.ShuffleRecords, ref.ShuffleRecords)
			}
		}
	}
}

// TestSpillBoundedMemory is the memory-bound acceptance check: a pipelined
// sort whose partial results would occupy megabytes in memory runs with a
// 256KiB budget, and the observed peak store footprint stays within a small
// constant of the budget (threshold crossing + retained encode scratch; the
// bound is ~2x, asserted at 4x for headroom).
func TestSpillBoundedMemory(t *testing.T) {
	const budget = 256 << 10
	input := workload.UniformKeys(2, 200_000, 1<<40)
	unbounded, err := Run(jobFor(apps.Sort()), input, Options{
		Mappers: 4, Reducers: 2, Mode: Pipelined,
	})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(jobFor(apps.Sort()), input, Options{
		Mappers: 4, Reducers: 2, Mode: Pipelined,
		SpillBytes: budget, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "bounded-vs-unbounded", unbounded.Output, bounded.Output)
	if unbounded.PeakPartialBytes < 4*budget {
		t.Fatalf("workload too small to prove anything: unbounded peak %d < 4x budget %d",
			unbounded.PeakPartialBytes, budget)
	}
	if bounded.PeakPartialBytes > 4*budget {
		t.Fatalf("memory bound violated: peak partials %d > 4x budget %d",
			bounded.PeakPartialBytes, budget)
	}
	if bounded.Spills == 0 || bounded.SpilledBytes == 0 {
		t.Fatal("bounded run never spilled")
	}
	t.Logf("unbounded peak=%dKB bounded peak=%dKB budget=%dKB spills=%d spilled=%dKB",
		unbounded.PeakPartialBytes>>10, bounded.PeakPartialBytes>>10, budget>>10,
		bounded.Spills, bounded.SpilledBytes>>10)
}

// TestSpillRequiresMergerPipelined: bounded-memory pipelined runs need a
// merger to reunite spilled partials.
func TestSpillRequiresMergerPipelined(t *testing.T) {
	job := jobFor(apps.WordCount())
	job.Merger = nil
	_, err := Run(job, workload.Text(1, 10, 5, 3), Options{
		Mode: Pipelined, SpillBytes: 1024,
	})
	if err == nil {
		t.Fatal("expected an error for SpillBytes without a Merger")
	}
}

// TestSpillStoreKindInteraction: an explicit KV store keeps its own
// memory management even when SpillBytes is set (the budget then only
// governs the mapper side in barrier mode).
func TestSpillStoreKindInteraction(t *testing.T) {
	input := workload.Text(5, 2000, 400, 6)
	ref, err := Run(jobFor(apps.WordCount()), input, Options{Mappers: 2, Reducers: 2, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(jobFor(apps.WordCount()), input, Options{
		Mappers: 2, Reducers: 2, Mode: Pipelined, Store: store.KV,
		SpillBytes: 8 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "kv-with-spillbytes", ref.Output, res.Output)
}

// slowStream throttles an inner stream reducer so the mapper outruns it and
// the per-partition queues fill.
type slowStream struct {
	inner core.StreamReducer
	n     int
}

func (s *slowStream) Consume(rec core.Record, out core.Output) {
	s.n++
	if s.n%256 == 0 {
		time.Sleep(time.Millisecond)
	}
	s.inner.Consume(rec, out)
}

func (s *slowStream) Finish(out core.Output) { s.inner.Finish(out) }

// TestSpillMapperSideStream: the in-proc pipelined transport's mapper-side
// spilling — reducers that lag fill the stream queues, and instead of
// buffering without bound (or wedging on backpressure) the mapper seals its
// buffered batches to disk as spill waves; reducers drain the sealed waves
// after the live stream, same output. The KV reduce store keeps reducer-side
// spills out of the count, so Spills > 0 proves the mapper-side path fired.
func TestSpillMapperSideStream(t *testing.T) {
	input := workload.Text(11, 6000, 500, 8)
	ref, err := Run(jobFor(apps.WordCount()), input,
		Options{Mappers: 4, Reducers: 2, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	job := jobFor(apps.WordCount())
	inner := job.NewStream
	job.NewStream = func(st store.Store) core.StreamReducer {
		return &slowStream{inner: inner(st)}
	}
	res, err := Run(job, input, Options{
		Mappers: 4, Reducers: 2, Mode: Pipelined, Store: store.KV,
		SpillBytes: 16 << 10, SpillDir: t.TempDir(),
		QueueCap: 1, BatchSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "mapper-side-stream-spill", ref.Output, res.Output)
	if res.Spills == 0 || res.SpilledBytes == 0 {
		t.Fatalf("mapper-side stream spilling never engaged: %d spills / %d bytes",
			res.Spills, res.SpilledBytes)
	}
	t.Logf("mapper stream spilling: %d waves, %dKB sealed", res.Spills, res.SpilledBytes>>10)
}
