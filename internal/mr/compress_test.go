package mr

// Compressed-run equivalence suite: every app must produce the same output
// over every shuffle transport in both modes with sealed-run compression
// on, at a 16KiB spill budget so the compressed path carries real volume.
// Barrier output must stay byte-identical to the uncompressed in-memory
// reference — the codecs change bytes on disk and on the wire, never the
// decompressed merge order. Run under -race in CI: the suite doubles as a
// race exercise of concurrent compressed sealing, serving and fetching.

import (
	"fmt"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/shuffle"
	"blmr/internal/workload"
)

var compressionAxis = []codec.Compression{codec.None, codec.DeltaBlock}

func TestCompressionEquivalence(t *testing.T) {
	for _, tc := range equivalenceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mappers := 4
			if tc.orderSensitive {
				mappers = 1
			}
			ref, err := Run(jobFor(tc.app), tc.input,
				Options{Mappers: mappers, Reducers: tc.reducers, Mode: Barrier})
			if err != nil {
				t.Fatalf("in-proc barrier reference: %v", err)
			}
			for _, kind := range allTransports {
				for _, comp := range compressionAxis {
					name := fmt.Sprintf("%v-%v", kind, comp)
					res, err := Run(jobFor(tc.app), tc.input, Options{
						Mappers: mappers, Reducers: tc.reducers, Mode: Barrier,
						Transport: kind, SpillBytes: 16 << 10, SpillDir: t.TempDir(),
						Compression: comp,
					})
					if err != nil {
						t.Fatalf("barrier %s: %v", name, err)
					}
					requireExact(t, tc.name+"-barrier-"+name, ref.Output, res.Output)
					checkCompressionAccounting(t, name, res, comp, kind)

					res, err = Run(jobFor(tc.app), tc.input, Options{
						Mappers: mappers, Reducers: tc.reducers, Mode: Pipelined,
						Transport: kind, SpillBytes: 16 << 10, SpillDir: t.TempDir(),
						Compression: comp, BatchSize: 64,
					})
					if err != nil {
						t.Fatalf("pipelined %s: %v", name, err)
					}
					if tc.orderSensitive {
						if len(res.Output) != len(ref.Output) {
							t.Fatalf("pipelined %s: %d records vs barrier's %d",
								name, len(res.Output), len(ref.Output))
						}
						continue
					}
					requireSame(t, tc.name+"-pipelined-"+name, ref.Output, res.Output)
				}
			}
		})
	}
}

// checkCompressionAccounting asserts the byte accounting invariants: raw
// covers at least the sealed volume, compression never reports expansion
// beyond framing, and TCP fetches move the compressed bytes.
func checkCompressionAccounting(t *testing.T, name string, res *Result, comp codec.Compression, kind shuffle.Kind) {
	t.Helper()
	if res.CompressedSpillBytes != res.SpilledBytes {
		t.Fatalf("%s: CompressedSpillBytes %d != SpilledBytes %d",
			name, res.CompressedSpillBytes, res.SpilledBytes)
	}
	if res.SpilledBytes > 0 && res.RawSpillBytes == 0 {
		t.Fatalf("%s: sealed %d bytes but RawSpillBytes is 0", name, res.SpilledBytes)
	}
	if comp == codec.None && res.RawSpillBytes != res.CompressedSpillBytes {
		t.Fatalf("%s: uncompressed run reports ratio %d/%d",
			name, res.RawSpillBytes, res.CompressedSpillBytes)
	}
	// Generous slack for tiny runs: per-run header + block framing.
	if comp != codec.None && res.CompressedSpillBytes > res.RawSpillBytes+res.RawSpillBytes/4+4096 {
		t.Fatalf("%s: compression expanded %d -> %d",
			name, res.RawSpillBytes, res.CompressedSpillBytes)
	}
	switch kind {
	case shuffle.TCP:
		if res.SpilledBytes > 0 && res.FetchBytes == 0 {
			t.Fatalf("%s: TCP exchange fetched 0 bytes", name)
		}
		if res.FetchBytes > res.CompressedSpillBytes {
			t.Fatalf("%s: fetched %d > sealed %d (fetches must travel compressed)",
				name, res.FetchBytes, res.CompressedSpillBytes)
		}
	default:
		if res.FetchBytes != 0 {
			t.Fatalf("%s: local transport reported %d fetch bytes", name, res.FetchBytes)
		}
	}
}

// TestCompressionRatioWordCount: the acceptance floor — DeltaBlock must cut
// the WordCount spill volume by at least 1.5x (sorted Zipf text keys are
// the codec's home turf; the real corpus benchmarks land near 3x).
func TestCompressionRatioWordCount(t *testing.T) {
	input := workload.Text(17, 6000, 800, 8)
	for _, kind := range []shuffle.Kind{shuffle.SpillExchange, shuffle.TCP} {
		res, err := Run(jobFor(apps.WordCount()), input, Options{
			Mappers: 4, Reducers: 4, Mode: Barrier, Transport: kind,
			SpillBytes: 16 << 10, SpillDir: t.TempDir(),
			Compression: codec.DeltaBlock,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.RawSpillBytes) / float64(res.CompressedSpillBytes)
		if ratio < 1.5 {
			t.Fatalf("%v: spill ratio %.2f < 1.5 (raw=%d sealed=%d)",
				kind, ratio, res.RawSpillBytes, res.CompressedSpillBytes)
		}
		t.Logf("%v: raw=%dKB sealed=%dKB (%.2fx), fetched=%dKB",
			kind, res.RawSpillBytes>>10, res.CompressedSpillBytes>>10, ratio, res.FetchBytes>>10)
	}
}

// TestCompressionCutsFetchBytes: on the TCP exchange the same job must
// fetch measurably fewer wire bytes compressed than uncompressed — the
// run-server ships sealed blocks verbatim.
func TestCompressionCutsFetchBytes(t *testing.T) {
	input := workload.Text(19, 6000, 800, 8)
	run := func(comp codec.Compression) *Result {
		res, err := Run(jobFor(apps.WordCount()), input, Options{
			Mappers: 4, Reducers: 4, Mode: Barrier, Transport: shuffle.TCP,
			SpillBytes: 16 << 10, SpillDir: t.TempDir(), Compression: comp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(codec.None)
	delta := run(codec.DeltaBlock)
	requireExact(t, "fetch-compressed-vs-plain", plain.Output, delta.Output)
	if delta.FetchBytes*3 > plain.FetchBytes*2 {
		t.Fatalf("compressed fetches %d not < 2/3 of uncompressed %d",
			delta.FetchBytes, plain.FetchBytes)
	}
	t.Logf("fetch bytes: %dKB plain -> %dKB delta", plain.FetchBytes>>10, delta.FetchBytes>>10)
}

// TestCompressionWithCombinerAndFanIn: compression composes with map-side
// combining and multi-pass merging (intermediate merge runs are sealed
// compressed too), still byte-identical.
func TestCompressionWithCombinerAndFanIn(t *testing.T) {
	input := workload.Text(23, 4000, 500, 10)
	app := apps.WordCount()
	ref, err := Run(jobFor(app), input, Options{Mappers: 4, Reducers: 3, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allTransports {
		combined := jobFor(app)
		combined.Combiner = app.Merger
		res, err := Run(combined, input, Options{
			Mappers: 4, Reducers: 3, Mode: Barrier, Transport: kind,
			SpillBytes: 4 << 10, SpillDir: t.TempDir(), MergeFanIn: 2,
			Compression: codec.DeltaBlock,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		requireSame(t, "compress-combine-"+kind.String(), ref.Output, res.Output)
		if res.MergePasses == 0 {
			t.Fatalf("%v: expected multi-pass merging at fan-in 2", kind)
		}
	}
}
