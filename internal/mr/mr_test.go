package mr

import (
	"strconv"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/store"
	"blmr/internal/workload"
)

func jobFor(app apps.App) Job {
	return Job{
		Name:      app.Name,
		Mapper:    app.Mapper,
		NewGroup:  app.NewGroup,
		NewStream: app.NewStream,
		Merger:    app.Merger,
	}
}

func runModes(t *testing.T, app apps.App, input []core.Record, opts Options) (b, p *Result) {
	t.Helper()
	ob := opts
	ob.Mode = Barrier
	b, err := Run(jobFor(app), input, ob)
	if err != nil {
		t.Fatalf("barrier: %v", err)
	}
	op := opts
	op.Mode = Pipelined
	p, err = Run(jobFor(app), input, op)
	if err != nil {
		t.Fatalf("pipelined: %v", err)
	}
	return b, p
}

func requireSame(t *testing.T, name string, a, b []core.Record) {
	t.Helper()
	sa := append([]core.Record(nil), a...)
	sb := append([]core.Record(nil), b...)
	SortOutput(sa)
	SortOutput(sb)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d records", name, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: record %d: %v vs %v", name, i, sa[i], sb[i])
		}
	}
}

func TestWordCountBothModes(t *testing.T) {
	input := workload.Text(1, 5000, 1000, 10)
	b, p := runModes(t, apps.WordCount(), input, Options{Mappers: 4, Reducers: 4})
	requireSame(t, "wordcount", b.Output, p.Output)
	total := 0
	for _, r := range p.Output {
		n, _ := strconv.Atoi(r.Value)
		total += n
	}
	if total != 5000*10 {
		t.Fatalf("total words %d, want %d", total, 50000)
	}
}

func TestSortBothModes(t *testing.T) {
	input := workload.UniformKeys(2, 10000, 1<<40)
	b, p := runModes(t, apps.Sort(), input, Options{Mappers: 4, Reducers: 3})
	requireSame(t, "sort", b.Output, p.Output)
	if len(b.Output) != len(input) {
		t.Fatalf("lost records: %d of %d", len(b.Output), len(input))
	}
}

func TestKNNBothModes(t *testing.T) {
	d := workload.KNN(3, 2000, 50, 1_000_000)
	app := apps.KNN(10, d.Experimental)
	b, p := runModes(t, app, workload.KNNRecords(d, 0), Options{Mappers: 4, Reducers: 4})
	requireSame(t, "knn", b.Output, p.Output)
	if len(b.Output) != 500 {
		t.Fatalf("knn output %d, want 500", len(b.Output))
	}
}

func TestLastFMBothModes(t *testing.T) {
	input := workload.Listens(4, 20000, 50, 500)
	b, p := runModes(t, apps.LastFM(), input, Options{Mappers: 4, Reducers: 4})
	requireSame(t, "lastfm", b.Output, p.Output)
}

func TestBlackScholesBothModes(t *testing.T) {
	params := apps.DefaultBSParams()
	params.Iterations = 5000
	params.Samples = 50
	input := workload.OptionSeeds(5, 8)
	b, p := runModes(t, apps.BlackScholes(params), input, Options{Mappers: 4, Reducers: 1})
	requireSame(t, "blackscholes", b.Output, p.Output)
}

func TestGACountsBothModes(t *testing.T) {
	input := workload.Individuals(6, 500, 64)
	b, p := runModes(t, apps.GA(50), input, Options{Mappers: 4, Reducers: 2})
	if len(b.Output) != len(input) || len(p.Output) != len(input) {
		t.Fatalf("GA offspring %d/%d, want %d", len(b.Output), len(p.Output), len(input))
	}
}

func TestPipelinedStores(t *testing.T) {
	input := workload.Text(7, 4000, 2000, 8)
	var ref []core.Record
	for _, kind := range []store.Kind{store.InMemory, store.SpillMerge, store.KV} {
		opts := Options{Mappers: 4, Reducers: 2, Mode: Pipelined, Store: kind,
			SpillThresholdBytes: 16 << 10, KVCacheBytes: 32 << 10}
		res, err := Run(jobFor(apps.WordCount()), input, opts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if kind == store.SpillMerge && res.Spills == 0 {
			t.Fatal("expected spills at 16KB threshold")
		}
		if ref == nil {
			ref = res.Output
			continue
		}
		requireSame(t, kind.String(), ref, res.Output)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Job{}, nil, Options{}); err == nil {
		t.Fatal("expected error for missing mapper")
	}
	app := apps.WordCount()
	j := jobFor(app)
	j.NewGroup = nil
	if _, err := Run(j, nil, Options{Mode: Barrier}); err == nil {
		t.Fatal("expected error for missing group reducer")
	}
	j = jobFor(app)
	j.NewStream = nil
	if _, err := Run(j, nil, Options{Mode: Pipelined}); err == nil {
		t.Fatal("expected error for missing stream reducer")
	}
	j = jobFor(app)
	j.Merger = nil
	if _, err := Run(j, nil, Options{Mode: Pipelined, Store: store.SpillMerge}); err == nil {
		t.Fatal("expected error for missing merger")
	}
}

func TestEmptyInput(t *testing.T) {
	b, p := runModes(t, apps.WordCount(), nil, Options{Mappers: 2, Reducers: 2})
	if len(b.Output) != 0 || len(p.Output) != 0 {
		t.Fatal("empty input must produce empty output")
	}
}

func TestSingleRecord(t *testing.T) {
	input := []core.Record{{Key: "d", Value: "hello hello"}}
	b, p := runModes(t, apps.WordCount(), input, Options{Mappers: 8, Reducers: 8})
	requireSame(t, "single", b.Output, p.Output)
	if len(b.Output) != 1 || b.Output[0].Value != "2" {
		t.Fatalf("output %v", b.Output)
	}
}

func TestManyReducersFewKeys(t *testing.T) {
	input := []core.Record{{Key: "d", Value: "a b c"}}
	_, p := runModes(t, apps.WordCount(), input, Options{Mappers: 2, Reducers: 16})
	if len(p.Output) != 3 {
		t.Fatalf("output %v", p.Output)
	}
}

func TestWallClockRecorded(t *testing.T) {
	input := workload.Text(8, 2000, 500, 8)
	res, err := Run(jobFor(apps.WordCount()), input, Options{Mappers: 2, Reducers: 2, Mode: Pipelined})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatal("wall clock not recorded")
	}
}
