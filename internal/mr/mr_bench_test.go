package mr

// Wall-clock microbenchmarks of the real-concurrency data plane. The
// headline comparison is pipelined WordCount over 1M input lines with
// BatchSize=1 (the original record-at-a-time shuffle) against the batched
// default: the batched path must be >=2x the unbatched throughput (see
// scripts/bench.sh, which snapshots these numbers).

import (
	"sync"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/workload"
)

var benchInput struct {
	once sync.Once
	recs []core.Record
}

// benchWordCountInput builds (once) a 1M-line Zipf corpus: 1M input
// records, ~4M emitted intermediate records per run.
func benchWordCountInput() []core.Record {
	benchInput.once.Do(func() {
		benchInput.recs = workload.Text(1, 1_000_000, 20_000, 4)
	})
	return benchInput.recs
}

func benchPipelinedWordCount(b *testing.B, batchSize int, combine bool) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	if combine {
		job.Combiner = apps.WordCount().Merger
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Pipelined, Mappers: 4, Reducers: 4, BatchSize: batchSize,
			// The unbatched baseline gets the pre-batching engine's 1024
			// records of per-reducer buffering (QueueCap now counts
			// batches), so the comparison isolates batching itself.
			QueueCap: queueCapFor(batchSize),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkPipelinedWordCount1M_Batch1(b *testing.B)   { benchPipelinedWordCount(b, 1, false) }
func BenchmarkPipelinedWordCount1M_Batch64(b *testing.B)  { benchPipelinedWordCount(b, 64, false) }
func BenchmarkPipelinedWordCount1M_Batch256(b *testing.B) { benchPipelinedWordCount(b, 256, false) }
func BenchmarkPipelinedWordCount1M_Batch256Combiner(b *testing.B) {
	benchPipelinedWordCount(b, 256, true)
}

func BenchmarkBarrierWordCount1M(b *testing.B) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{Mode: Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrierWordCount1MCombiner(b *testing.B) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	job.Combiner = apps.WordCount().Merger
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{Mode: Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipelinedSort(b *testing.B, batchSize int) {
	input := workload.UniformKeys(2, 1_000_000, 1<<40)
	job := jobFor(apps.Sort())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{
			Mode: Pipelined, Mappers: 4, Reducers: 4, BatchSize: batchSize,
			QueueCap: queueCapFor(batchSize),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// queueCapFor keeps the unbatched baseline faithful to the pre-batching
// engine: BatchSize=1 gets its original 1024-record channel buffer, batched
// runs use the default (64 batches).
func queueCapFor(batchSize int) int {
	if batchSize == 1 {
		return 1024
	}
	return 0
}

func BenchmarkPipelinedSort1M_Batch1(b *testing.B)   { benchPipelinedSort(b, 1) }
func BenchmarkPipelinedSort1M_Batch256(b *testing.B) { benchPipelinedSort(b, 256) }
