package mr

// Wall-clock microbenchmarks of the real-concurrency data plane. The
// headline comparison is pipelined WordCount over 1M input lines with
// BatchSize=1 (the original record-at-a-time shuffle) against the batched
// default: the batched path must be >=2x the unbatched throughput (see
// scripts/bench.sh, which snapshots these numbers).

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/workload"
)

var benchInput struct {
	once sync.Once
	recs []core.Record
}

// benchWordCountInput builds (once) a 1M-line Zipf corpus: 1M input
// records, ~4M emitted intermediate records per run.
func benchWordCountInput() []core.Record {
	benchInput.once.Do(func() {
		benchInput.recs = workload.Text(1, 1_000_000, 20_000, 4)
	})
	return benchInput.recs
}

func benchPipelinedWordCount(b *testing.B, batchSize int, combine bool) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	if combine {
		job.Combiner = apps.WordCount().Merger
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Pipelined, Mappers: 4, Reducers: 4, BatchSize: batchSize,
			// The unbatched baseline gets the pre-batching engine's 1024
			// records of per-reducer buffering (QueueCap now counts
			// batches), so the comparison isolates batching itself.
			QueueCap: queueCapFor(batchSize),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkPipelinedWordCount1M_Batch1(b *testing.B)   { benchPipelinedWordCount(b, 1, false) }
func BenchmarkPipelinedWordCount1M_Batch64(b *testing.B)  { benchPipelinedWordCount(b, 64, false) }
func BenchmarkPipelinedWordCount1M_Batch256(b *testing.B) { benchPipelinedWordCount(b, 256, false) }
func BenchmarkPipelinedWordCount1M_Batch256Combiner(b *testing.B) {
	benchPipelinedWordCount(b, 256, true)
}

func BenchmarkBarrierWordCount1M(b *testing.B) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{Mode: Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrierWordCount1MCombiner(b *testing.B) {
	input := benchWordCountInput()
	job := jobFor(apps.WordCount())
	job.Combiner = apps.WordCount().Merger
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{Mode: Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipelinedSort(b *testing.B, batchSize int) {
	input := workload.UniformKeys(2, 1_000_000, 1<<40)
	job := jobFor(apps.Sort())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(job, input, Options{
			Mode: Pipelined, Mappers: 4, Reducers: 4, BatchSize: batchSize,
			QueueCap: queueCapFor(batchSize),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// queueCapFor keeps the unbatched baseline faithful to the pre-batching
// engine: BatchSize=1 gets its original 1024-record channel buffer, batched
// runs use the default (64 batches).
func queueCapFor(batchSize int) int {
	if batchSize == 1 {
		return 1024
	}
	return 0
}

func BenchmarkPipelinedSort1M_Batch1(b *testing.B)   { benchPipelinedSort(b, 1) }
func BenchmarkPipelinedSort1M_Batch256(b *testing.B) { benchPipelinedSort(b, 256) }

// --- External (disk-spilling) shuffle ---------------------------------------
//
// The spill benchmarks prove the memory bound the acceptance criteria ask
// for: a 1M-record sort whose partial results occupy ~17.5MB unbounded
// runs under a 1MiB budget. "peak-partial-MB" is the engine's own accounting
// (max store.ApproxBytes across reducers); "peak-extra-heap-MB" is
// sampled live heap (runtime.ReadMemStats) minus the pre-run baseline, so
// the bound is visible both in accounted and in real heap terms. The
// baseline includes the input slice, which is the job's working set, not
// shuffle memory.

// sampleHeap polls HeapAlloc until stop closes, reporting the peak.
func sampleHeap(stop <-chan struct{}) <-chan uint64 {
	out := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		for {
			select {
			case <-stop:
				out <- peak
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return out
}

func benchSpill(b *testing.B, mode Mode, spillBytes int64) {
	input := workload.UniformKeys(2, 1_000_000, 1<<40)
	job := jobFor(apps.Sort())
	dir := b.TempDir()
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		peakC := sampleHeap(stop)
		res, err := Run(job, input, Options{
			Mode: mode, Mappers: 4, Reducers: 4,
			SpillBytes: spillBytes, SpillDir: dir,
		})
		close(stop)
		peak := <-peakC
		if err != nil {
			b.Fatal(err)
		}
		if spillBytes > 0 && res.SpilledBytes == 0 {
			b.Fatal("spill benchmark never spilled")
		}
		if extra := float64(peak) - float64(base.HeapAlloc); extra > 0 {
			b.ReportMetric(extra/(1<<20), "peak-extra-heap-MB")
		}
		if mode == Pipelined {
			b.ReportMetric(float64(res.PeakPartialBytes)/(1<<20), "peak-partial-MB")
		}
		b.ReportMetric(float64(res.SpilledBytes)/(1<<20), "spilled-MB")
	}
}

func BenchmarkPipelinedSort1M_SpillUnlimited(b *testing.B) { benchSpill(b, Pipelined, 0) }
func BenchmarkPipelinedSort1M_Spill1MiB(b *testing.B)      { benchSpill(b, Pipelined, 1<<20) }
func BenchmarkBarrierSort1M_SpillUnlimited(b *testing.B)   { benchSpill(b, Barrier, 0) }
func BenchmarkBarrierSort1M_Spill1MiB(b *testing.B)        { benchSpill(b, Barrier, 1<<20) }

// --- Spill-run compression --------------------------------------------------
//
// The compression benchmarks report the tentpole numbers of the compressed
// spill-run codecs: "spill-ratio" is Result.RawSpillBytes over
// Result.CompressedSpillBytes (the acceptance floor is 1.5x on the
// WordCount workload; delta front-coding of the sorted Zipf text keys
// lands well above it), "sealed-MB" what actually hit disk. Inputs and
// budgets match the plain spill benchmarks so the ns/op columns line up.
//
// Alloc note (BENCH_3 -> BENCH_4): the slab arena in rbtree cut
// BenchmarkPipelinedSort1M_Batch256 from 2,000,505 allocs/op / 284.6
// MB/op / 2.03 s/op to 4,607 allocs/op / 293.0 MB/op / 1.60 s/op — the
// two per-insert allocations (node + defensive key clone) that dominated
// the profile at every batch size now come from recycled slabs (434x
// fewer allocations, ~21% faster).

func benchSpillComp(b *testing.B, app apps.App, input []core.Record, comp codec.Compression) {
	job := jobFor(app)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Barrier, Mappers: 4, Reducers: 4,
			SpillBytes: 1 << 20, SpillDir: dir, Compression: comp,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.RawSpillBytes == 0 {
			b.Fatal("compression benchmark never spilled")
		}
		b.ReportMetric(float64(res.RawSpillBytes)/float64(res.CompressedSpillBytes), "spill-ratio")
		b.ReportMetric(float64(res.CompressedSpillBytes)/(1<<20), "sealed-MB")
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func benchSortCompInput() []core.Record { return workload.UniformKeys(2, 1_000_000, 1<<40) }

func BenchmarkWordCountSpill1M_CompNone(b *testing.B) {
	benchSpillComp(b, apps.WordCount(), benchWordCountInput(), codec.None)
}
func BenchmarkWordCountSpill1M_CompBlock(b *testing.B) {
	benchSpillComp(b, apps.WordCount(), benchWordCountInput(), codec.Block)
}
func BenchmarkWordCountSpill1M_CompDelta(b *testing.B) {
	benchSpillComp(b, apps.WordCount(), benchWordCountInput(), codec.DeltaBlock)
}
func BenchmarkSortSpill1M_CompNone(b *testing.B) {
	benchSpillComp(b, apps.Sort(), benchSortCompInput(), codec.None)
}
func BenchmarkSortSpill1M_CompBlock(b *testing.B) {
	benchSpillComp(b, apps.Sort(), benchSortCompInput(), codec.Block)
}
func BenchmarkSortSpill1M_CompDelta(b *testing.B) {
	benchSpillComp(b, apps.Sort(), benchSortCompInput(), codec.DeltaBlock)
}
