// Package mr is the real-concurrency MapReduce engine — the wall-clock
// counterpart of the simulated engine. Since the exec/shuffle split it is a
// thin composition of three layers: the execution plane (internal/exec:
// task descriptors, task bodies, a scheduler with per-worker slots and
// first-error propagation), a pluggable shuffle transport (internal/shuffle:
// in-process batched channels, a sealed spill-run exchange, or the same
// exchange over a loopback TCP run-server), and this package's Run, which
// wires a LocalWorker to a transport and assembles the Result. The
// multi-process engine (internal/mpexec) composes the same layers with
// remote workers instead.
package mr

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/shuffle"
	"blmr/internal/store"
)

// Mode, Job and Options are the execution plane's vocabulary, aliased so
// this package remains the engine's front door.
type (
	// Mode selects barrier or pipelined execution.
	Mode = exec.Mode
	// Job bundles the user code for one MapReduce job.
	Job = exec.Job
	// Options tunes an execution.
	Options = exec.Options
)

// Execution modes.
const (
	Barrier   = exec.Barrier
	Pipelined = exec.Pipelined
)

// Result reports one execution.
type Result struct {
	// Output is the concatenation of reducer outputs in reducer order.
	// Within a reducer, barrier output is key-sorted; pipelined output
	// order follows each reducer's Finish.
	Output []core.Record
	// MapWall is the wall-clock duration of the map phase (in pipelined
	// mode reduce work overlaps it).
	MapWall time.Duration
	// Wall is the total wall-clock duration.
	Wall time.Duration
	// Spills counts spill runs: sealed map-side waves (SpillBytes
	// crossings) plus pipelined spill-merge store runs.
	Spills int
	// ShuffleRecords is the number of intermediate records shuffled from
	// mappers to reducers, after map-side combining — the wall-clock
	// engine's counterpart of simmr.Result.ShuffleBytes.
	ShuffleRecords int64
	// SpilledBytes is the total encoded bytes sealed into run files (post-
	// compression — the bytes that actually hit disk). On the in-proc
	// transport that is spill overflow only; the run-exchange transports
	// materialize every map output wave, so it covers the whole shuffle
	// volume.
	SpilledBytes int64
	// RawSpillBytes is the standard (pre-compression) encoded size of the
	// sealed runs behind SpilledBytes; RawSpillBytes/CompressedSpillBytes
	// is the job's spill compression ratio (1 under codec.None).
	RawSpillBytes int64
	// CompressedSpillBytes equals SpilledBytes, named for the ratio pair.
	CompressedSpillBytes int64
	// FetchBytes is the total wire bytes reduce tasks fetched from
	// run-servers (TCP exchange; compressed sections travel — and count —
	// compressed). 0 for transports that read runs locally.
	FetchBytes int64
	// FetchDials counts run-server connections dialed by the pooled fetch
	// plane (TCP exchange). The pool keeps one multiplexed connection per
	// peer and reuses it across sections and tasks, so this stays near
	// peers × concurrent fetches — against one dial per fetched section
	// before pooling. 0 for transports that read runs locally.
	FetchDials int64
	// ServerOpens counts os.Open calls the run-server's serving path paid
	// (TCP exchange). The refcounted handle cache keeps this near the
	// distinct sealed-file count — against one open per served section
	// before caching, i.e. sections ≫ opens. 0 for transports that read
	// runs locally.
	ServerOpens int64
	// PeakPartialBytes is the largest partial-result store footprint
	// (store.Store.ApproxBytes) observed across pipelined reducers,
	// sampled once per consumed batch — the number to compare against
	// Options.SpillBytes to see the memory bound holding.
	PeakPartialBytes int64
	// MergePasses counts intermediate merge passes forced by
	// Options.MergeFanIn across reduce tasks (0 = every partition fit in
	// one merge wave).
	MergePasses int
	// MapRetries / ReduceRetries count task re-executions after worker
	// loss (multi-process engine; 0 in-process). A churn-free run reports
	// zeros.
	MapRetries    int
	ReduceRetries int
	// BackupsLaunched / BackupsWon count speculative map clones dispatched
	// and clones whose attempt completed first (Options.Speculative).
	BackupsLaunched int
	BackupsWon      int
	// ReattachedMaps counts map tasks a restarted coordinator recovered by
	// re-attaching a returning worker's surviving sealed runs instead of
	// re-executing them (multi-process engine resume; 0 everywhere else).
	ReattachedMaps int
}

// Run executes job over input and returns the result. The input slice is
// not modified.
func Run(job Job, input []core.Record, opts Options) (*Result, error) {
	opts.Normalize()
	if err := Validate(job, opts); err != nil {
		return nil, err
	}
	spillDir, err := OpenSpillDir(opts)
	if err != nil {
		return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
	}
	if spillDir != nil {
		defer spillDir.Close()
	}

	start := time.Now()
	maps := exec.SplitMaps(input, opts.Mappers)
	tr, err := shuffle.New(opts.Transport, shuffle.Config{
		Maps: len(maps), Parts: opts.Reducers,
		QueueCap: opts.QueueCap, BatchSize: opts.BatchSize,
		Dir: spillDir, MergeFanIn: opts.MergeFanIn,
		DecodeWorkers: opts.DecodeWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
	}
	defer tr.Close()

	sched := exec.Scheduler{
		Workers: []exec.Assignment{{
			W:        &exec.LocalWorker{Job: job, Opts: opts, Transport: tr, Scratch: spillDir},
			MapSlots: opts.Mappers,
			// Every partition must be schedulable concurrently on the
			// in-proc stream transport (see the scheduler's package note);
			// in-process reduce tasks are goroutines, so grant all slots.
			ReduceSlots: opts.Reducers,
		}},
		OnFail: tr.Fail,
	}
	sum, err := sched.Run(maps, exec.ReduceTasks(opts.Reducers))
	if err != nil {
		return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
	}
	res := Assemble(sum)
	if spillDir != nil {
		res.SpilledBytes = spillDir.SpilledBytes()
		res.CompressedSpillBytes = spillDir.SpilledBytes()
		res.RawSpillBytes = spillDir.RawSpilledBytes()
	}
	if dc, ok := tr.(interface{ FetchDials() int64 }); ok {
		res.FetchDials = dc.FetchDials()
	}
	if so, ok := tr.(interface{ ServerOpens() int64 }); ok {
		res.ServerOpens = so.ServerOpens()
	}
	res.Wall = time.Since(start)
	return res, nil
}

// Validate checks job/opts consistency (shared with the multi-process
// coordinator). opts must be normalized.
func Validate(job Job, opts Options) error {
	if job.Mapper == nil {
		return fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	if opts.Mode == Barrier && job.NewGroup == nil {
		return fmt.Errorf("mr: job %q has no group reducer", job.Name)
	}
	if opts.Mode == Pipelined && job.NewStream == nil {
		return fmt.Errorf("mr: job %q has no stream reducer", job.Name)
	}
	if opts.Mode == Pipelined && opts.Store == store.SpillMerge && job.Merger == nil {
		return fmt.Errorf("mr: job %q needs a merger for spill-merge", job.Name)
	}
	if opts.Mode == Pipelined && opts.SpillBytes > 0 && opts.Store != store.KV && job.Merger == nil {
		return fmt.Errorf("mr: job %q needs a merger for a bounded-memory pipelined run", job.Name)
	}
	return nil
}

// OpenSpillDir opens the run directory an execution with these options
// needs, or returns nil when the execution never touches disk: the
// run-exchange transports always seal runs, and the in-proc transport needs
// one whenever SpillBytes bounds task memory — barrier map waves, pipelined
// mapper-side spill waves, and spill-merge reducer stores all seal runs
// into it.
func OpenSpillDir(opts Options) (*dfs.RunDir, error) {
	need := opts.Transport != shuffle.InProc || opts.SpillBytes > 0
	if !need {
		return nil, nil
	}
	return dfs.NewRunDirComp(opts.SpillDir, opts.Compression)
}

// Assemble folds a scheduler summary into a Result (shared with the
// multi-process coordinator; SpilledBytes and Wall are the caller's).
func Assemble(sum *exec.Summary) *Result {
	res := &Result{
		MapWall: sum.MapWall, ShuffleRecords: sum.ShuffleRecords, Spills: sum.MapSpills,
		MapRetries: sum.MapRetries, ReduceRetries: sum.ReduceRetries,
		BackupsLaunched: sum.BackupsLaunched, BackupsWon: sum.BackupsWon,
		ReattachedMaps: sum.ReattachedMaps,
	}
	var n int
	for _, rr := range sum.Reduces {
		n += len(rr.Output)
	}
	res.Output = make([]core.Record, 0, n)
	for _, rr := range sum.Reduces {
		res.Output = append(res.Output, rr.Output...)
		res.Spills += rr.Spills
		res.MergePasses += rr.MergePasses
		res.FetchBytes += rr.FetchBytes
		if rr.PeakPartialBytes > res.PeakPartialBytes {
			res.PeakPartialBytes = rr.PeakPartialBytes
		}
	}
	return res
}

// SortOutput key-sorts a result's output in place (helper for callers
// needing globally ordered results across reducers).
func SortOutput(recs []core.Record) {
	slices.SortFunc(recs, func(a, b core.Record) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return strings.Compare(a.Value, b.Value)
	})
}
