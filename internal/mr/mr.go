// Package mr is an in-process parallel MapReduce engine built on goroutines
// and channels — the wall-clock counterpart of the simulated engine. Map
// workers feed per-reducer channels; in barrier mode reducers wait for all
// map output and merge-sort it first (Figure 2), in pipelined mode they
// consume records as they arrive, holding partial results in a store
// (Figure 3). Channels map directly onto the paper's pipelined shuffle;
// records travel in batches (Options.BatchSize) so channel synchronization
// amortizes over many records instead of being paid per record.
package mr

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/kvstore"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

// Mode selects barrier or pipelined execution.
type Mode int

// Execution modes.
const (
	Barrier Mode = iota
	Pipelined
)

// Job bundles the user code for one MapReduce job (the same shape as
// apps.App, decoupled so mr stays reusable as a standalone library).
type Job struct {
	Name      string
	Mapper    core.Mapper
	NewGroup  func() core.GroupReducer
	NewStream func(st store.Store) core.StreamReducer
	Merger    store.Merger
	// Combiner, when non-nil, folds same-key intermediate records on the
	// map side before they are shuffled (Hadoop's combiner; parity with
	// simmr.JobSpec.Combiner). In barrier mode each mapper's per-reducer
	// run is combined once after mapping; in pipelined mode each batch is
	// combined as it is flushed. It must be commutative and associative,
	// and the reduce function must tolerate pre-combined values (true for
	// aggregation-class jobs whose reduce is the same fold).
	Combiner store.Merger
}

// Options tunes an execution.
type Options struct {
	// Mappers is the number of concurrent map workers (default NumCPU).
	Mappers int
	// Reducers is the number of reduce tasks (default NumCPU).
	Reducers int
	// Mode selects barrier or pipelined shuffle (default Barrier).
	Mode Mode
	// Store picks the partial-result strategy for pipelined mode.
	Store store.Kind
	// SpillThresholdBytes bounds in-memory partials for SpillMerge.
	SpillThresholdBytes int64
	// KVCacheBytes bounds the KV store cache.
	KVCacheBytes int64
	// QueueCap is the per-reducer channel buffer in batches (default 64,
	// mirroring simmr.Config.QueueCapBatches). Total per-reducer
	// buffering is QueueCap*BatchSize records.
	QueueCap int
	// BatchSize is the number of records a mapper accumulates per reducer
	// before sending one batch over the channel (default 256). 1
	// reproduces the original record-at-a-time shuffle.
	BatchSize int
	// CombineKeys bounds the distinct keys a mapper's per-reducer combine
	// buffer holds before it flushes (default max(BatchSize, 4096)). Only
	// used when Job.Combiner is set; larger buffers fold more duplicates
	// map-side at the cost of mapper memory (Hadoop's io.sort.mb role).
	CombineKeys int
	// SpillBytes, when > 0, bounds each task's buffered intermediate data
	// (accounted with store.ApproxRecordBytes) and turns the shuffle into
	// an external one: barrier mappers sort, encode and seal runs to disk
	// whenever their buffers cross the budget, and reducers stream an
	// external k-way merge over all sealed runs straight into the group
	// reducer — intermediate data never has to fit in RAM. Pipelined
	// reducers hold partial results in a disk-backed spill-merge store
	// with the same budget (Job.Merger required). 0 keeps everything in
	// memory (the pre-spill behaviour).
	SpillBytes int64
	// SpillDir is the directory for spill-run files. Empty means a fresh
	// temporary directory, removed when Run returns.
	SpillDir string
}

func (o *Options) normalize() {
	if o.Mappers <= 0 {
		o.Mappers = runtime.NumCPU()
	}
	if o.Reducers <= 0 {
		o.Reducers = runtime.NumCPU()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.CombineKeys <= 0 {
		o.CombineKeys = 4096
		if o.BatchSize > o.CombineKeys {
			o.CombineKeys = o.BatchSize
		}
	}
	if o.SpillThresholdBytes <= 0 {
		o.SpillThresholdBytes = 64 << 20
	}
	if o.KVCacheBytes <= 0 {
		o.KVCacheBytes = 16 << 20
	}
}

// Result reports one execution.
type Result struct {
	// Output is the concatenation of reducer outputs in reducer order.
	// Within a reducer, barrier output is key-sorted; pipelined output
	// order follows each reducer's Finish.
	Output []core.Record
	// MapWall is the wall-clock duration of the map phase (in pipelined
	// mode reduce work overlaps it).
	MapWall time.Duration
	// Wall is the total wall-clock duration.
	Wall time.Duration
	// Spills counts spill-merge runs across reducers.
	Spills int
	// ShuffleRecords is the number of intermediate records shuffled from
	// mappers to reducers, after map-side combining — the wall-clock
	// engine's counterpart of simmr.Result.ShuffleBytes.
	ShuffleRecords int64
	// SpilledBytes is the total encoded bytes sealed into spill-run files
	// (0 when SpillBytes is unset or nothing crossed the budget).
	SpilledBytes int64
	// PeakPartialBytes is the largest partial-result store footprint
	// (store.Store.ApproxBytes) observed across pipelined reducers,
	// sampled once per consumed batch — the number to compare against
	// Options.SpillBytes to see the memory bound holding.
	PeakPartialBytes int64
}

// errOnce records the first error across concurrent tasks.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Run executes job over input and returns the result. The input slice is
// not modified.
func Run(job Job, input []core.Record, opts Options) (*Result, error) {
	opts.normalize()
	if job.Mapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	if opts.Mode == Barrier && job.NewGroup == nil {
		return nil, fmt.Errorf("mr: job %q has no group reducer", job.Name)
	}
	if opts.Mode == Pipelined && job.NewStream == nil {
		return nil, fmt.Errorf("mr: job %q has no stream reducer", job.Name)
	}
	if opts.Mode == Pipelined && opts.Store == store.SpillMerge && job.Merger == nil {
		return nil, fmt.Errorf("mr: job %q needs a merger for spill-merge", job.Name)
	}
	if opts.Mode == Pipelined && opts.SpillBytes > 0 && opts.Store != store.KV && job.Merger == nil {
		return nil, fmt.Errorf("mr: job %q needs a merger for a bounded-memory pipelined run", job.Name)
	}
	var spillDir *dfs.RunDir
	// Pipelined KV runs manage memory through the KV cache and never write
	// spill runs, so they skip the RunDir (mirrors newStore's exclusion).
	if opts.SpillBytes > 0 && (opts.Mode == Barrier || opts.Store != store.KV) {
		var err error
		spillDir, err = dfs.NewRunDir(opts.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		defer spillDir.Close()
	}
	start := time.Now()
	var res *Result
	var err error
	switch {
	case opts.Mode == Barrier && opts.SpillBytes > 0:
		res, err = runBarrierSpill(job, input, opts, spillDir)
	case opts.Mode == Barrier:
		res, err = runBarrier(job, input, opts)
	default:
		res, err = runPipelined(job, input, opts, spillDir)
	}
	if err != nil {
		return nil, err
	}
	if spillDir != nil {
		res.SpilledBytes = spillDir.SpilledBytes()
	}
	res.Wall = time.Since(start)
	return res, nil
}

// splitInput carves input into one contiguous piece per map worker.
func splitInput(input []core.Record, n int) [][]core.Record {
	per := (len(input) + n - 1) / n
	if per == 0 {
		per = 1
	}
	var out [][]core.Record
	for lo := 0; lo < len(input); lo += per {
		hi := lo + per
		if hi > len(input) {
			hi = len(input)
		}
		out = append(out, input[lo:hi])
	}
	return out
}

func runBarrier(job Job, input []core.Record, opts Options) (*Result, error) {
	splits := splitInput(input, opts.Mappers)
	// Each mapper partitions into private per-reducer runs; runs are
	// merged per reducer after the map barrier, keeping everything
	// deterministic regardless of goroutine scheduling.
	runs := make([][][]core.Record, len(splits)) // [mapper][reducer][]
	mapStart := time.Now()
	var wg sync.WaitGroup
	for m, split := range splits {
		wg.Add(1)
		go func(m int, split []core.Record) {
			defer wg.Done()
			// Presize each run for an identity-shaped mapper; expanding
			// mappers (WordCount) grow from there.
			em := core.NewPartitionedEmitter(opts.Reducers, len(split)/opts.Reducers+1)
			for _, r := range split {
				job.Mapper.Map(r.Key, r.Value, em)
			}
			if job.Combiner != nil {
				for p, part := range em.Parts {
					em.Parts[p] = sortx.Combine(part, job.Combiner)
				}
			}
			runs[m] = em.Parts
		}(m, split)
	}
	wg.Wait() // the map-side barrier
	mapWall := time.Since(mapStart)

	outs := make([][]core.Record, opts.Reducers)
	var rwg sync.WaitGroup
	for r := 0; r < opts.Reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			total := 0
			for m := range runs {
				total += len(runs[m][r])
			}
			all := make([]core.Record, 0, total)
			for m := range runs {
				all = append(all, runs[m][r]...)
			}
			sortx.ByKey(all)
			sink := core.NewRecordSink(0)
			gr := job.NewGroup()
			sortx.Group(all, func(k string, vs []string) { gr.Reduce(k, vs, sink) })
			if c, ok := gr.(core.Cleanup); ok {
				c.Cleanup(sink)
			}
			outs[r] = sink.Recs
		}(r)
	}
	rwg.Wait()
	var shuffled int64
	for m := range runs {
		for _, part := range runs[m] {
			shuffled += int64(len(part))
		}
	}
	return &Result{Output: concat(outs), MapWall: mapWall, ShuffleRecords: shuffled}, nil
}

// spillFile is one sealed multi-partition spill file: every non-empty
// partition's sorted run back to back (Hadoop's io.sort spill layout),
// with the per-partition byte spans remembered in memory instead of an
// on-disk index block.
type spillFile struct {
	path string
	segs []span // per partition; n == 0 means the partition was empty
}

type span struct{ off, n int64 }

// runBarrierSpill is barrier mode with the external, memory-bounded
// shuffle. Each mapper accounts its buffered intermediate records
// (store.ApproxRecordBytes); crossing Options.SpillBytes sorts every
// partition buffer (stably, so equal keys keep emission order), optionally
// combines it, encodes it via codec, and seals ONE spill file per crossing
// holding all partitions' runs back to back — so the file count tracks
// ceil(output/budget), matching the simulator's model, not
// crossings x reducers. The under-budget tail of each partition stays in
// memory as a final sorted run. After the map barrier, reducer r streams a
// k-way merge over all of partition r's segments — ordered (mapper, seal
// order), ties broken by run index, which reproduces the in-memory path's
// stable sort exactly — feeding groups straight into the reduce function,
// so neither side ever materializes the full partition.
func runBarrierSpill(job Job, input []core.Record, opts Options, spillDir *dfs.RunDir) (*Result, error) {
	splits := splitInput(input, opts.Mappers)
	nm := len(splits)
	seals := make([][]spillFile, nm)    // [mapper] sealed files, in seal order
	live := make([][][]core.Record, nm) // [mapper][reducer] in-memory tail run
	var firstErr errOnce
	var shuffled int64

	mapStart := time.Now()
	var wg sync.WaitGroup
	for m, split := range splits {
		wg.Add(1)
		go func(m int, split []core.Record) {
			defer wg.Done()
			em := core.NewPartitionedEmitter(opts.Reducers, 0)
			var sent int64
			var buffered int64
			var scratch []byte
			// sortPart sorts/combines partition p's buffer in place.
			sortPart := func(p int) []core.Record {
				part := em.Parts[p]
				if job.Combiner != nil {
					part = sortx.Combine(part, job.Combiner)
				} else {
					sortx.ByKey(part)
				}
				em.Parts[p] = part
				return part
			}
			// seal writes every partition's sorted run into one new spill
			// file and resets the buffers.
			seal := func() bool {
				w, err := spillDir.Create(fmt.Sprintf("m%d", m))
				if err != nil {
					firstErr.set(err)
					return false
				}
				sf := spillFile{segs: make([]span, opts.Reducers)}
				for p := range em.Parts {
					part := sortPart(p)
					if len(part) == 0 {
						continue
					}
					scratch = codec.AppendRecords(scratch[:0], part)
					off := w.Bytes()
					if _, err := w.Write(scratch); err != nil {
						firstErr.set(err)
						w.Abort()
						return false
					}
					sf.segs[p] = span{off: off, n: int64(len(scratch))}
					sent += int64(len(part))
					em.Parts[p] = part[:0]
				}
				if err := w.Close(); err != nil {
					firstErr.set(err)
					w.Abort()
					return false
				}
				sf.path = w.Path()
				seals[m] = append(seals[m], sf)
				buffered = 0
				return true
			}
			aborted := false
			acct := core.EmitterFunc(func(k, v string) {
				if aborted {
					return
				}
				em.Emit(k, v)
				buffered += store.ApproxRecordBytes(k, v)
				if buffered >= opts.SpillBytes && !seal() {
					aborted = true // checked between input records
				}
			})
			for _, r := range split {
				if aborted {
					return
				}
				job.Mapper.Map(r.Key, r.Value, acct)
			}
			for p := range em.Parts {
				sortPart(p)
				sent += int64(len(em.Parts[p]))
			}
			live[m] = em.Parts
			atomic.AddInt64(&shuffled, sent)
		}(m, split)
	}
	wg.Wait() // the map-side barrier
	mapWall := time.Since(mapStart)
	if err := firstErr.get(); err != nil {
		return nil, fmt.Errorf("mr: job %q map spill: %w", job.Name, err)
	}

	spills := 0
	for m := range seals {
		spills += len(seals[m])
	}
	outs := make([][]core.Record, opts.Reducers)
	var rwg sync.WaitGroup
	for r := 0; r < opts.Reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var runs []sortx.Run
			var open []*dfs.RunReader
			defer func() {
				for _, rr := range open {
					_ = rr.Close()
				}
			}()
			for m := 0; m < nm; m++ {
				for _, sf := range seals[m] {
					sp := sf.segs[r]
					if sp.n == 0 {
						continue
					}
					rr, err := dfs.OpenRunAt(sf.path, sp.off, sp.n)
					if err != nil {
						firstErr.set(err)
						return
					}
					open = append(open, rr)
					runs = append(runs, rr)
				}
				if len(live[m][r]) > 0 {
					runs = append(runs, sortx.NewSliceRun(live[m][r]))
				}
			}
			merger := sortx.NewMerger(runs)
			sink := core.NewRecordSink(0)
			gr := job.NewGroup()
			for {
				key, values, ok := merger.NextGroup()
				if !ok {
					break
				}
				gr.Reduce(key, values, sink)
			}
			if err := merger.Err(); err != nil {
				firstErr.set(err)
				return
			}
			if c, ok := gr.(core.Cleanup); ok {
				c.Cleanup(sink)
			}
			outs[r] = sink.Recs
		}(r)
	}
	rwg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, fmt.Errorf("mr: job %q external merge: %w", job.Name, err)
	}
	// Spill files are shared by all reducers; RunDir.Close (deferred in
	// Run) removes them after the job, owned temp dir or not.
	return &Result{Output: concat(outs), MapWall: mapWall, Spills: spills,
		ShuffleRecords: atomic.LoadInt64(&shuffled)}, nil
}

func runPipelined(job Job, input []core.Record, opts Options, spillDir *dfs.RunDir) (*Result, error) {
	splits := splitInput(input, opts.Mappers)
	chans := make([]chan []core.Record, opts.Reducers)
	for r := range chans {
		chans[r] = make(chan []core.Record, opts.QueueCap)
	}
	// free recycles batch buffers from reducers back to mappers, bounding
	// steady-state allocation to roughly the in-flight batch count. A
	// buffered channel doubles as a lock-free free list of slice headers.
	freeCap := opts.Reducers * opts.QueueCap
	if freeCap > 1<<14 {
		freeCap = 1 << 14
	}
	free := make(chan []core.Record, freeCap)

	mapStart := time.Now()
	var mapWall time.Duration
	var shuffled int64
	var mwg sync.WaitGroup
	for _, split := range splits {
		mwg.Add(1)
		go func(split []core.Record) {
			defer mwg.Done()
			var sent int64
			defer func() { atomic.AddInt64(&shuffled, sent) }()
			getBuf := func() []core.Record {
				select {
				case b := <-free:
					return b
				default:
					return make([]core.Record, 0, opts.BatchSize)
				}
			}
			var em core.Emitter
			var flushAll func()
			if job.Combiner == nil {
				bufs := make([][]core.Record, opts.Reducers)
				flush := func(p int) {
					if len(bufs[p]) == 0 {
						return
					}
					sent += int64(len(bufs[p]))
					chans[p] <- bufs[p]
					bufs[p] = nil
				}
				em = core.EmitterFunc(func(k, v string) {
					p := core.Partition(k, opts.Reducers)
					b := bufs[p]
					if b == nil {
						b = getBuf()
					}
					b = append(b, core.Record{Key: k, Value: v})
					bufs[p] = b
					if len(b) >= opts.BatchSize {
						flush(p)
					}
				})
				flushAll = func() {
					for p := range bufs {
						flush(p)
					}
				}
			} else {
				// Combiner path: per-reducer hash accumulators fold
				// same-key records map-side; a buffer drains only when it
				// reaches CombineKeys *distinct* keys (or mapper exit), so
				// skewed streams combine across far more than one batch's
				// worth of records. Draining re-batches to BatchSize.
				// Presize modestly and let maps grow: a CombineKeys-sized
				// map per (mapper, reducer) pair would cost quadratic
				// memory in core count before any record arrives.
				hint := opts.BatchSize
				if opts.CombineKeys < hint {
					hint = opts.CombineKeys
				}
				combufs := make([]map[string]string, opts.Reducers)
				for p := range combufs {
					combufs[p] = make(map[string]string, hint)
				}
				flush := func(p int) {
					m := combufs[p]
					if len(m) == 0 {
						return
					}
					b := getBuf()
					for k, v := range m {
						b = append(b, core.Record{Key: k, Value: v})
						if len(b) >= opts.BatchSize {
							sent += int64(len(b))
							chans[p] <- b
							b = getBuf()
						}
					}
					clear(m)
					if len(b) > 0 {
						sent += int64(len(b))
						chans[p] <- b
					} else {
						select {
						case free <- b:
						default:
						}
					}
				}
				em = core.EmitterFunc(func(k, v string) {
					p := core.Partition(k, opts.Reducers)
					m := combufs[p]
					if old, ok := m[k]; ok {
						m[k] = job.Combiner(old, v)
						return
					}
					m[k] = v
					if len(m) >= opts.CombineKeys {
						flush(p)
					}
				})
				flushAll = func() {
					for p := range combufs {
						flush(p)
					}
				}
			}
			for _, r := range split {
				job.Mapper.Map(r.Key, r.Value, em)
			}
			flushAll() // mapper-exit flush of partial batches
		}(split)
	}
	go func() {
		mwg.Wait()
		mapWall = time.Since(mapStart)
		for _, ch := range chans {
			close(ch)
		}
	}()

	outs := make([][]core.Record, opts.Reducers)
	spills := make([]int, opts.Reducers)
	peaks := make([]int64, opts.Reducers)
	var firstErr errOnce
	var rwg sync.WaitGroup
	for r := 0; r < opts.Reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			st := newStore(job, opts, spillDir, r)
			sr := job.NewStream(st)
			sink := core.NewRecordSink(0)
			var myPeak int64
			for batch := range chans[r] {
				for _, rec := range batch {
					sr.Consume(rec, sink)
				}
				if b := st.ApproxBytes(); b > myPeak {
					myPeak = b
				}
				clear(batch) // drop string refs before the buffer idles
				select {
				case free <- batch[:0]:
				default: // free list full; let GC take it
				}
			}
			sr.Finish(sink)
			if sp, ok := st.(*store.SpillStore); ok {
				spills[r] = sp.Spills
				firstErr.set(sp.Err())
			}
			peaks[r] = myPeak
			outs[r] = sink.Recs
		}(r)
	}
	rwg.Wait()
	if err := firstErr.get(); err != nil {
		return nil, fmt.Errorf("mr: job %q reducer spill: %w", job.Name, err)
	}
	total := 0
	for _, s := range spills {
		total += s
	}
	var peak int64
	for _, p := range peaks {
		if p > peak {
			peak = p
		}
	}
	return &Result{Output: concat(outs), MapWall: mapWall, Spills: total,
		ShuffleRecords: atomic.LoadInt64(&shuffled), PeakPartialBytes: peak}, nil
}

// newStore builds reducer r's partial-result store. With SpillBytes set,
// tree-backed stores become disk-backed spill-merge stores budgeted at
// SpillBytes, so pipelined partial results leave the heap for real; the KV
// store already bounds its own memory through its cache.
func newStore(job Job, opts Options, spillDir *dfs.RunDir, r int) store.Store {
	if opts.SpillBytes > 0 && opts.Store != store.KV {
		return store.NewSpillStoreOn(opts.SpillBytes, job.Merger, nil,
			spillDir.NewRunSet(fmt.Sprintf("red%d", r)))
	}
	switch opts.Store {
	case store.SpillMerge:
		return store.NewSpillStore(opts.SpillThresholdBytes, job.Merger, nil)
	case store.KV:
		return store.NewKVStore(kvstore.New(kvstore.Config{CacheBytes: opts.KVCacheBytes}))
	default:
		return store.NewMemStore()
	}
}

func concat(parts [][]core.Record) []core.Record {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]core.Record, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// SortOutput key-sorts a result's output in place (helper for callers
// needing globally ordered results across reducers).
func SortOutput(recs []core.Record) {
	slices.SortFunc(recs, func(a, b core.Record) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return strings.Compare(a.Value, b.Value)
	})
}
