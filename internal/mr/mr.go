// Package mr is an in-process parallel MapReduce engine built on goroutines
// and channels — the wall-clock counterpart of the simulated engine. Map
// workers feed per-reducer channels; in barrier mode reducers wait for all
// map output and merge-sort it first (Figure 2), in pipelined mode they
// consume records as they arrive, holding partial results in a store
// (Figure 3). Channels map directly onto the paper's pipelined shuffle.
package mr

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"blmr/internal/core"
	"blmr/internal/kvstore"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

// Mode selects barrier or pipelined execution.
type Mode int

// Execution modes.
const (
	Barrier Mode = iota
	Pipelined
)

// Job bundles the user code for one MapReduce job (the same shape as
// apps.App, decoupled so mr stays reusable as a standalone library).
type Job struct {
	Name      string
	Mapper    core.Mapper
	NewGroup  func() core.GroupReducer
	NewStream func(st store.Store) core.StreamReducer
	Merger    store.Merger
}

// Options tunes an execution.
type Options struct {
	// Mappers is the number of concurrent map workers (default NumCPU).
	Mappers int
	// Reducers is the number of reduce tasks (default NumCPU).
	Reducers int
	// Mode selects barrier or pipelined shuffle (default Barrier).
	Mode Mode
	// Store picks the partial-result strategy for pipelined mode.
	Store store.Kind
	// SpillThresholdBytes bounds in-memory partials for SpillMerge.
	SpillThresholdBytes int64
	// KVCacheBytes bounds the KV store cache.
	KVCacheBytes int64
	// QueueCap is the per-reducer channel buffer (default 1024).
	QueueCap int
}

func (o *Options) normalize() {
	if o.Mappers <= 0 {
		o.Mappers = runtime.NumCPU()
	}
	if o.Reducers <= 0 {
		o.Reducers = runtime.NumCPU()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.SpillThresholdBytes <= 0 {
		o.SpillThresholdBytes = 64 << 20
	}
	if o.KVCacheBytes <= 0 {
		o.KVCacheBytes = 16 << 20
	}
}

// Result reports one execution.
type Result struct {
	// Output is the concatenation of reducer outputs in reducer order.
	// Within a reducer, barrier output is key-sorted; pipelined output
	// order follows each reducer's Finish.
	Output []core.Record
	// MapWall is the wall-clock duration of the map phase (in pipelined
	// mode reduce work overlaps it).
	MapWall time.Duration
	// Wall is the total wall-clock duration.
	Wall time.Duration
	// Spills counts spill-merge runs across reducers.
	Spills int
}

// Run executes job over input and returns the result. The input slice is
// not modified.
func Run(job Job, input []core.Record, opts Options) (*Result, error) {
	opts.normalize()
	if job.Mapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	if opts.Mode == Barrier && job.NewGroup == nil {
		return nil, fmt.Errorf("mr: job %q has no group reducer", job.Name)
	}
	if opts.Mode == Pipelined && job.NewStream == nil {
		return nil, fmt.Errorf("mr: job %q has no stream reducer", job.Name)
	}
	if opts.Mode == Pipelined && opts.Store == store.SpillMerge && job.Merger == nil {
		return nil, fmt.Errorf("mr: job %q needs a merger for spill-merge", job.Name)
	}
	start := time.Now()
	var res *Result
	var err error
	if opts.Mode == Barrier {
		res, err = runBarrier(job, input, opts)
	} else {
		res, err = runPipelined(job, input, opts)
	}
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	return res, nil
}

// splitInput carves input into one contiguous piece per map worker.
func splitInput(input []core.Record, n int) [][]core.Record {
	per := (len(input) + n - 1) / n
	if per == 0 {
		per = 1
	}
	var out [][]core.Record
	for lo := 0; lo < len(input); lo += per {
		hi := lo + per
		if hi > len(input) {
			hi = len(input)
		}
		out = append(out, input[lo:hi])
	}
	return out
}

func runBarrier(job Job, input []core.Record, opts Options) (*Result, error) {
	splits := splitInput(input, opts.Mappers)
	// Each mapper partitions into private per-reducer runs; runs are
	// merged per reducer after the map barrier, keeping everything
	// deterministic regardless of goroutine scheduling.
	runs := make([][][]core.Record, len(splits)) // [mapper][reducer][]
	mapStart := time.Now()
	var wg sync.WaitGroup
	for m, split := range splits {
		wg.Add(1)
		go func(m int, split []core.Record) {
			defer wg.Done()
			parts := make([][]core.Record, opts.Reducers)
			em := core.EmitterFunc(func(k, v string) {
				p := core.Partition(k, opts.Reducers)
				parts[p] = append(parts[p], core.Record{Key: k, Value: v})
			})
			for _, r := range split {
				job.Mapper.Map(r.Key, r.Value, em)
			}
			runs[m] = parts
		}(m, split)
	}
	wg.Wait() // the map-side barrier
	mapWall := time.Since(mapStart)

	outs := make([][]core.Record, opts.Reducers)
	var rwg sync.WaitGroup
	for r := 0; r < opts.Reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var all []core.Record
			for m := range runs {
				all = append(all, runs[m][r]...)
			}
			sortx.ByKey(all)
			sink := &recSink{}
			gr := job.NewGroup()
			sortx.Group(all, func(k string, vs []string) { gr.Reduce(k, vs, sink) })
			if c, ok := gr.(core.Cleanup); ok {
				c.Cleanup(sink)
			}
			outs[r] = sink.recs
		}(r)
	}
	rwg.Wait()
	return &Result{Output: concat(outs), MapWall: mapWall}, nil
}

func runPipelined(job Job, input []core.Record, opts Options) (*Result, error) {
	splits := splitInput(input, opts.Mappers)
	chans := make([]chan core.Record, opts.Reducers)
	for r := range chans {
		chans[r] = make(chan core.Record, opts.QueueCap)
	}
	mapStart := time.Now()
	var mapWall time.Duration
	var mwg sync.WaitGroup
	for _, split := range splits {
		mwg.Add(1)
		go func(split []core.Record) {
			defer mwg.Done()
			em := core.EmitterFunc(func(k, v string) {
				chans[core.Partition(k, opts.Reducers)] <- core.Record{Key: k, Value: v}
			})
			for _, r := range split {
				job.Mapper.Map(r.Key, r.Value, em)
			}
		}(split)
	}
	go func() {
		mwg.Wait()
		mapWall = time.Since(mapStart)
		for _, ch := range chans {
			close(ch)
		}
	}()

	outs := make([][]core.Record, opts.Reducers)
	spills := make([]int, opts.Reducers)
	var rwg sync.WaitGroup
	for r := 0; r < opts.Reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			st := newStore(job, opts)
			sr := job.NewStream(st)
			sink := &recSink{}
			for rec := range chans[r] {
				sr.Consume(rec, sink)
			}
			sr.Finish(sink)
			if sp, ok := st.(*store.SpillStore); ok {
				spills[r] = sp.Spills
			}
			outs[r] = sink.recs
		}(r)
	}
	rwg.Wait()
	total := 0
	for _, s := range spills {
		total += s
	}
	return &Result{Output: concat(outs), MapWall: mapWall, Spills: total}, nil
}

func newStore(job Job, opts Options) store.Store {
	switch opts.Store {
	case store.SpillMerge:
		return store.NewSpillStore(opts.SpillThresholdBytes, job.Merger, nil)
	case store.KV:
		return store.NewKVStore(kvstore.New(kvstore.Config{CacheBytes: opts.KVCacheBytes}))
	default:
		return store.NewMemStore()
	}
}

type recSink struct{ recs []core.Record }

func (s *recSink) Write(k, v string) { s.recs = append(s.recs, core.Record{Key: k, Value: v}) }

func concat(parts [][]core.Record) []core.Record {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]core.Record, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// SortOutput key-sorts a result's output in place (helper for callers
// needing globally ordered results across reducers).
func SortOutput(recs []core.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Value < recs[j].Value
	})
}
