package mr

// Transport microbenchmarks: the same barrier WordCount over the three
// shuffle transports, quantifying what the run-exchange disciplines cost
// next to the shared-memory data plane (sealing + decode for the local
// exchange, plus loopback fetch connections for TCP). Snapshotted by
// scripts/bench.sh into BENCH_<n>.json.

import (
	"sync"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/shuffle"
	"blmr/internal/workload"
)

var transportBenchInput struct {
	once sync.Once
	recs []core.Record
}

func benchTransportInput() []core.Record {
	transportBenchInput.once.Do(func() {
		transportBenchInput.recs = workload.Text(2, 250_000, 20_000, 4)
	})
	return transportBenchInput.recs
}

func benchBarrierTransport(b *testing.B, kind shuffle.Kind) {
	input := benchTransportInput()
	job := jobFor(apps.WordCount())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Barrier, Mappers: 4, Reducers: 4,
			Transport: kind, SpillDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkBarrierWordCount250K_InProc(b *testing.B) { benchBarrierTransport(b, shuffle.InProc) }
func BenchmarkBarrierWordCount250K_Runx(b *testing.B) {
	benchBarrierTransport(b, shuffle.SpillExchange)
}
func BenchmarkBarrierWordCount250K_TCP(b *testing.B) { benchBarrierTransport(b, shuffle.TCP) }

func benchPipelinedTransport(b *testing.B, kind shuffle.Kind) {
	input := benchTransportInput()
	job := jobFor(apps.WordCount())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Pipelined, Mappers: 4, Reducers: 4,
			Transport: kind, SpillDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkPipelinedWordCount250K_InProc(b *testing.B) {
	benchPipelinedTransport(b, shuffle.InProc)
}
func BenchmarkPipelinedWordCount250K_TCP(b *testing.B) { benchPipelinedTransport(b, shuffle.TCP) }

// The compressed TCP exchange at decode-workers 1 vs the default pool: how
// much fetched-section CRC+decompress work the parallel decode pipeline
// takes off the consuming merge (identical output either way; even on a
// single-core host the pool wins by overlapping the connection's I/O waits).
func benchBarrierTCPDecode(b *testing.B, workers int) {
	input := benchTransportInput()
	job := jobFor(apps.WordCount())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(job, input, Options{
			Mode: Barrier, Mappers: 4, Reducers: 4,
			Transport: shuffle.TCP, Compression: codec.DeltaBlock,
			DecodeWorkers: workers, SpillDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkBarrierWordCount250K_TCPDeltaDecode1(b *testing.B) { benchBarrierTCPDecode(b, 1) }
func BenchmarkBarrierWordCount250K_TCPDeltaDecodeN(b *testing.B) { benchBarrierTCPDecode(b, 0) }
