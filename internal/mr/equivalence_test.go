package mr

// Output-equivalence suite for the batched shuffle: for every app in
// internal/apps, barrier mode, the old record-at-a-time pipelined behavior
// (BatchSize=1) and batched pipelined mode must produce the same reduced
// output as sorted multisets, across batch sizes and queue capacities.
// Run under -race in CI: the suite doubles as a race exercise of the
// batch free-list.

import (
	"math/rand"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/workload"
)

type equivCase struct {
	name     string
	app      apps.App
	input    []core.Record
	reducers int
	// orderSensitive marks cross-key apps whose output multiset depends
	// on per-reducer arrival order (GA's crossover windows). For those we
	// pin Mappers=1 (making pipelined arrival order deterministic) and
	// compare only record counts against barrier mode, exact multisets
	// across pipelined batch sizes.
	orderSensitive bool
}

func equivalenceCases() []equivCase {
	text := workload.Text(11, 3000, 800, 8)
	knnData := workload.KNN(3, 1500, 40, 1_000_000)
	bsParams := apps.DefaultBSParams()
	bsParams.Iterations = 2000
	bsParams.Samples = 30
	return []equivCase{
		{name: "grep", app: apps.Grep("word0001"), input: text, reducers: 4},
		{name: "sort", app: apps.Sort(), input: workload.UniformKeys(2, 8000, 1<<40), reducers: 3},
		{name: "wordcount", app: apps.WordCount(), input: text, reducers: 4},
		{name: "knn", app: apps.KNN(10, knnData.Experimental),
			input: workload.KNNRecords(knnData, 0), reducers: 4},
		{name: "lastfm", app: apps.LastFM(), input: workload.Listens(4, 8000, 40, 300), reducers: 4},
		{name: "blackscholes", app: apps.BlackScholes(bsParams),
			input: workload.OptionSeeds(5, 8), reducers: 1},
		{name: "ga", app: apps.GA(50), input: workload.Individuals(6, 400, 64),
			reducers: 2, orderSensitive: true},
	}
}

func TestBatchedPipelinedEquivalence(t *testing.T) {
	queueCaps := []int{1, 2, 8, 64}
	batchSizes := []int{1, 7, 256, 4096}
	for ci, tc := range equivalenceCases() {
		ci, tc := ci, tc
		t.Run(tc.name, func(t *testing.T) {
			// Per-subtest source: subtests run in parallel and rand.Rand
			// is not goroutine-safe.
			rng := rand.New(rand.NewSource(int64(42 + ci)))
			t.Parallel()
			mappers := 4
			if tc.orderSensitive {
				mappers = 1
			}
			barrier, err := Run(jobFor(tc.app), tc.input,
				Options{Mappers: mappers, Reducers: tc.reducers, Mode: Barrier})
			if err != nil {
				t.Fatalf("barrier: %v", err)
			}
			// BatchSize=1 reproduces the original record-at-a-time shuffle
			// and anchors the cross-batch-size comparison.
			var ref *Result
			for _, bs := range batchSizes {
				qc := queueCaps[rng.Intn(len(queueCaps))]
				res, err := Run(jobFor(tc.app), tc.input, Options{
					Mappers: mappers, Reducers: tc.reducers, Mode: Pipelined,
					BatchSize: bs, QueueCap: qc,
				})
				if err != nil {
					t.Fatalf("pipelined batch=%d queue=%d: %v", bs, qc, err)
				}
				if tc.orderSensitive {
					if len(res.Output) != len(barrier.Output) {
						t.Fatalf("batch=%d: %d records vs barrier's %d",
							bs, len(res.Output), len(barrier.Output))
					}
				} else {
					requireSame(t, tc.name+"-vs-barrier", barrier.Output, res.Output)
				}
				if ref == nil {
					ref = res
					continue
				}
				requireSame(t, tc.name+"-vs-batch1", ref.Output, res.Output)
			}
		})
	}
}

func TestCombinerEquivalence(t *testing.T) {
	input := workload.Text(9, 4000, 500, 10)
	app := apps.WordCount()
	plain := jobFor(app)
	combined := jobFor(app)
	combined.Combiner = app.Merger

	ref, err := Run(plain, input, Options{Mappers: 4, Reducers: 4, Mode: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Barrier, Pipelined} {
		for _, bs := range []int{1, 64, 1024} {
			res, err := Run(combined, input, Options{
				Mappers: 4, Reducers: 4, Mode: mode, BatchSize: bs,
			})
			if err != nil {
				t.Fatalf("mode=%d batch=%d: %v", mode, bs, err)
			}
			requireSame(t, "combined", ref.Output, res.Output)
			// Barrier runs combine whole mapper partitions; pipelined runs
			// combine through the CombineKeys hash buffer regardless of
			// batch size. Either way the shuffle must shrink.
			if res.ShuffleRecords >= ref.ShuffleRecords {
				t.Fatalf("mode=%d batch=%d: combiner did not cut shuffle volume: %d >= %d",
					mode, bs, res.ShuffleRecords, ref.ShuffleRecords)
			}
		}
	}
}

func TestShuffleRecordsCounted(t *testing.T) {
	input := workload.Text(3, 1000, 300, 6)
	for _, mode := range []Mode{Barrier, Pipelined} {
		res, err := Run(jobFor(apps.WordCount()), input, Options{Mappers: 3, Reducers: 3, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if res.ShuffleRecords != int64(1000*6) {
			t.Fatalf("mode=%d: ShuffleRecords=%d, want %d", mode, res.ShuffleRecords, 1000*6)
		}
	}
}
