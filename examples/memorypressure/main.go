// Memory pressure: reproduces the paper's Figure 5 on the simulated
// cluster. With the barrier removed, per-key partial results accumulate at
// each reducer; the unmanaged in-memory store blows the 1400MB heap and the
// job is killed, while the disk spill-and-merge store stays under its 240MB
// threshold and completes.
//
//	go run ./examples/memorypressure
package main

import (
	"fmt"

	"blmr/internal/harness"
)

func main() {
	f := harness.Fig5()
	fmt.Println(f.Render())
	if f.InMemory.Failed && !f.Spill.Failed {
		fmt.Println("As in the paper: the unmanaged reducer died, spill-and-merge survived.")
	}
}
