// Memoization (the paper's DryadInc future-work extension): map outputs are
// cached across job runs keyed by chunk content, so re-running WordCount
// over an unchanged corpus skips every map task.
//
//	go run ./examples/memoization
package main

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/harness"
	"blmr/internal/simmr"
)

func main() {
	ds := harness.WordCountData(4)
	app := apps.WordCount()
	memo := simmr.NewMemoCache()

	run := func() *simmr.Result {
		e := simmr.NewEngine(simmr.Config{
			Cluster: harness.PaperCluster(), Replication: 3,
			ByteScale: ds.ByteScale, RecordScale: ds.RecordScale,
			FailMapTask: -1, Memo: memo,
		})
		f := e.Ingest("in", ds.Splits)
		return e.Run(simmr.JobSpec{
			Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
			NewStream: app.NewStream, Merger: app.Merger,
			Reducers: 60, Mode: simmr.Pipelined, Costs: harness.CalibWordCount,
		}, f)
	}

	cold := run()
	warm := run()
	fmt.Printf("cold run: %6.1fs  (memo hits %d/%d)\n", cold.Completion, cold.MemoHits, cold.MapTasks)
	fmt.Printf("warm run: %6.1fs  (memo hits %d/%d)\n", warm.Completion, warm.MemoHits, warm.MapTasks)
	fmt.Printf("rerunning the unchanged job was %.1fx faster; outputs identical: %v\n",
		cold.Completion/warm.Completion, len(cold.Output) == len(warm.Output))
}
