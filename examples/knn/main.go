// k-nearest-neighbors with the in-process engine: a Selection-class job
// (paper Section 4.4) that keeps a bounded top-k list per key instead of
// sorting, so the barrier-less reducer uses O(k x keys) memory.
//
//	go run ./examples/knn
package main

import (
	"fmt"
	"log"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

func main() {
	const k = 5
	data := workload.KNN(7, 200_000, 10, 1_000_000)
	app := apps.KNN(k, data.Experimental)

	res, err := mr.Run(mr.Job{
		Name: app.Name, Mapper: app.Mapper,
		NewGroup: app.NewGroup, NewStream: app.NewStream, Merger: app.Merger,
	}, workload.KNNRecords(data, 0), mr.Options{Mode: mr.Pipelined, Reducers: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d training values, %d queries, k=%d, wall %v\n\n",
		len(data.Training), len(data.Experimental), k, res.Wall)
	mr.SortOutput(res.Output)
	for _, r := range res.Output {
		query := core.DecodeUint64(r.Key)
		parts := core.SplitValues(r.Value)
		fmt.Printf("query %7d  ->  neighbor %7d (distance %d)\n",
			query, core.DecodeUint64(parts[1]), core.DecodeUint64(parts[0]))
	}
}
