// Black-Scholes Monte-Carlo pricing: the paper's best case for breaking the
// barrier (Section 6.1.6). A single reducer folds every sampled value into
// O(1) running sums; the barrier version instead sorts millions of values
// it never needed sorted. This example runs both on the simulated cluster
// and checks the price against the closed-form solution.
//
//	go run ./examples/blackscholes
package main

import (
	"fmt"
	"strconv"

	"blmr/internal/apps"
	"blmr/internal/harness"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

func main() {
	const mappers = 100
	params := harness.BSPaperParams()
	ds := harness.BSData(mappers)

	var prices [2]float64
	var times [2]float64
	for i, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
		res := harness.Run(harness.RunSpec{
			App: apps.BlackScholes(params), Data: ds, Mode: mode,
			Reducers: 1, Store: store.InMemory, Costs: harness.CalibBS,
		})
		times[i] = res.Completion
		for _, r := range res.Output {
			if r.Key == "mean" {
				prices[i], _ = strconv.ParseFloat(r.Value, 64)
			}
		}
	}

	analytic := apps.BSAnalytic(params)
	fmt.Printf("%d mappers, 1 reducer\n", mappers)
	fmt.Printf("with barrier:    %6.1fs  price %.4f\n", times[0], prices[0])
	fmt.Printf("without barrier: %6.1fs  price %.4f\n", times[1], prices[1])
	fmt.Printf("analytic price:  %.4f\n", analytic)
	fmt.Printf("improvement:     %.1f%%\n", 100*(times[0]-times[1])/times[0])
}
