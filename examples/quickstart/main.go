// Quickstart: count words with the in-process engine, comparing the classic
// barrier execution against the paper's barrier-less (pipelined) mode.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"blmr/internal/apps"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

func main() {
	// 50k lines of Zipf-distributed text.
	input := workload.Text(1, 50_000, 5_000, 12)

	app := apps.WordCount()
	job := mr.Job{
		Name:      app.Name,
		Mapper:    app.Mapper,
		NewGroup:  app.NewGroup,
		NewStream: app.NewStream,
		Merger:    app.Merger,
	}

	barrier, err := mr.Run(job, input, mr.Options{Mode: mr.Barrier})
	if err != nil {
		log.Fatal(err)
	}
	// The pipelined shuffle moves records in batches (Options.BatchSize);
	// BatchSize 1 reproduces record-at-a-time shuffling for comparison.
	pipelined, err := mr.Run(job, input, mr.Options{Mode: mr.Pipelined, BatchSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	// A map-side combiner (the app's merger) folds duplicate words before
	// they are shuffled at all.
	combined := job
	combined.Combiner = app.Merger
	withCombiner, err := mr.Run(combined, input, mr.Options{Mode: mr.Pipelined, BatchSize: 256})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distinct words: %d\n", len(barrier.Output))
	fmt.Printf("barrier:    %v (map %v, %d records shuffled)\n", barrier.Wall, barrier.MapWall, barrier.ShuffleRecords)
	fmt.Printf("pipelined:  %v (reduce overlapped the maps, %d records shuffled)\n", pipelined.Wall, pipelined.ShuffleRecords)
	fmt.Printf("+combiner:  %v (map-side folding, %d records shuffled)\n", withCombiner.Wall, withCombiner.ShuffleRecords)

	mr.SortOutput(pipelined.Output)
	fmt.Println("\ntop of the output:")
	for _, r := range pipelined.Output[:5] {
		fmt.Printf("  %-12s %s\n", r.Key, r.Value)
	}
}
