// Quickstart: count words with the in-process engine, comparing the classic
// barrier execution against the paper's barrier-less (pipelined) mode.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"blmr/internal/apps"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

func main() {
	// 50k lines of Zipf-distributed text.
	input := workload.Text(1, 50_000, 5_000, 12)

	app := apps.WordCount()
	job := mr.Job{
		Name:      app.Name,
		Mapper:    app.Mapper,
		NewGroup:  app.NewGroup,
		NewStream: app.NewStream,
		Merger:    app.Merger,
	}

	barrier, err := mr.Run(job, input, mr.Options{Mode: mr.Barrier})
	if err != nil {
		log.Fatal(err)
	}
	pipelined, err := mr.Run(job, input, mr.Options{Mode: mr.Pipelined})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distinct words: %d\n", len(barrier.Output))
	fmt.Printf("barrier:    %v (map %v)\n", barrier.Wall, barrier.MapWall)
	fmt.Printf("pipelined:  %v (reduce overlapped the maps)\n", pipelined.Wall)

	mr.SortOutput(pipelined.Output)
	fmt.Println("\ntop of the output:")
	for _, r := range pipelined.Output[:5] {
		fmt.Printf("  %-12s %s\n", r.Key, r.Value)
	}
}
