// Multi-process cluster execution: the exec/shuffle split running across
// real OS processes. The demo re-executes itself as N worker processes
// (default 3); each worker registers with the coordinator over loopback
// TCP, receives map splits, seals its map output as codec-encoded spill
// runs, and serves them to the other workers' reduce tasks through its own
// run-server — the run-exchange discipline a real cluster shuffle uses.
// WordCount and Sort both run in barrier mode, and each output is checked
// byte-for-byte against the single-process in-memory engine.
//
//	go run ./examples/cluster
//	go run ./examples/cluster -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blmr/internal/apps"
	"blmr/internal/core"
	blexec "blmr/internal/exec"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

var (
	workers     = flag.Int("workers", 3, "worker subprocesses")
	workerCoord = flag.String("worker-coord", "", "internal: run as a worker, dialing this coordinator")
	workerApp   = flag.String("worker-app", "", "internal: app the worker executes")
)

func jobFor(app apps.App) mr.Job {
	return mr.Job{Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger}
}

func appByName(name string) apps.App {
	if name == "sort" {
		return apps.Sort()
	}
	return apps.WordCount()
}

func inputFor(name string) []core.Record {
	if name == "sort" {
		return workload.UniformKeys(7, 120_000, 1<<40)
	}
	return workload.Text(7, 20_000, 2_000, 10)
}

func opts() blexec.Options {
	return blexec.Options{Mappers: 6, Reducers: 4, Mode: mr.Barrier}
}

func main() {
	flag.Parse()
	if *workerCoord != "" {
		// Worker role: same binary, same job code, serve until released.
		if err := mpexec.Serve(*workerCoord, jobFor(appByName(*workerApp)), opts()); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("=== %d-worker loopback-TCP cluster vs single process ===\n", *workers)
	for _, name := range []string{"wordcount", "sort"} {
		app := appByName(name)
		input := inputFor(name)

		ref, err := mr.Run(jobFor(app), input, opts())
		fatal(err)

		res, err := runCluster(name, input)
		fatal(err)

		if len(res.Output) != len(ref.Output) {
			fatal(fmt.Errorf("%s: cluster produced %d records, single process %d",
				name, len(res.Output), len(ref.Output)))
		}
		for i := range res.Output {
			if res.Output[i] != ref.Output[i] {
				fatal(fmt.Errorf("%s: record %d differs: %v vs %v",
					name, i, res.Output[i], ref.Output[i]))
			}
		}
		fmt.Printf("%-10s %7d in / %7d out  %6.1fms wall  %5.1fMB sealed runs  output byte-identical\n",
			name, len(input), len(res.Output), res.Wall.Seconds()*1e3,
			float64(res.SpilledBytes)/(1<<20))
	}
	fmt.Println("every record crossed a process boundary as a sealed, codec-encoded spill run")
}

// runCluster spawns the workers, coordinates one job, and tears down.
func runCluster(appName string, input []core.Record) (*mr.Result, error) {
	cluster, err := mpexec.SpawnLocal([]string{"-worker-app", appName}, *workers, 60*time.Second)
	if err != nil {
		return nil, err
	}
	defer cluster.Teardown()
	return cluster.Coord.Run(jobFor(appByName(appName)), input, opts())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
