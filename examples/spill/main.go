// External shuffle: the memorypressure example's wall-clock sibling. That
// demo shows the *simulated* cluster surviving Figure 5's heap squeeze;
// this one proves the real-concurrency engine does it for real: a sort
// whose intermediate data is ~50x a 1MiB buffer budget runs twice — once
// all-in-RAM, once with Options.SpillBytes — and the bounded run completes
// with its partial-result footprint pinned near the budget, its overflow
// sorted, codec-encoded and sealed to real spill files, and its output
// byte-identical to the unbounded run.
//
//	go run ./examples/spill
package main

import (
	"fmt"
	"os"
	"runtime"

	"blmr/internal/apps"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

const budget = 1 << 20 // 1MiB of buffered intermediate data per task

func main() {
	// ~1M records, ~35MB of reducer partial results when unbounded.
	input := workload.UniformKeys(42, 1_000_000, 1<<40)
	job := mr.Job{
		Name:      "sort",
		Mapper:    apps.Sort().Mapper,
		NewGroup:  apps.Sort().NewGroup,
		NewStream: apps.Sort().NewStream,
		Merger:    apps.Sort().Merger,
	}

	unbounded, err := mr.Run(job, input, mr.Options{Mode: mr.Pipelined, Mappers: 4, Reducers: 4})
	if err != nil {
		panic(err)
	}

	bounded, err := mr.Run(job, input, mr.Options{
		Mode: mr.Pipelined, Mappers: 4, Reducers: 4,
		SpillBytes: budget,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("input: %d records; buffer budget: %d KiB\n\n", len(input), budget>>10)
	fmt.Printf("%-12s %18s %12s %12s\n", "run", "peak partials (KB)", "spill runs", "spilled (MB)")
	fmt.Printf("%-12s %18d %12d %12.1f\n", "unbounded",
		unbounded.PeakPartialBytes>>10, unbounded.Spills, float64(unbounded.SpilledBytes)/(1<<20))
	fmt.Printf("%-12s %18d %12d %12.1f\n\n", "spill-bytes",
		bounded.PeakPartialBytes>>10, bounded.Spills, float64(bounded.SpilledBytes)/(1<<20))

	same := len(unbounded.Output) == len(bounded.Output)
	if same {
		ua, ba := unbounded.Output, bounded.Output
		mr.SortOutput(ua)
		mr.SortOutput(ba)
		for i := range ua {
			if ua[i] != ba[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("outputs identical: %v\n", same)
	fmt.Printf("live heap after both runs: ~%d MB (unbounded run peaked the accounted partials at %dx the budget; the bounded run stayed at %.1fx)\n",
		liveHeapMB(),
		unbounded.PeakPartialBytes/budget,
		float64(bounded.PeakPartialBytes)/budget)
	if bounded.PeakPartialBytes <= 4*budget && bounded.Spills > 0 && same {
		fmt.Println("Intermediate data larger than memory: completed with bounded partial-result memory.")
	} else {
		fmt.Println("FAILED: the memory bound or output equivalence did not hold.")
		os.Exit(1)
	}
}

func liveHeapMB() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc >> 20
}
