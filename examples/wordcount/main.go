// Wordcount on the simulated 15-node cluster: reproduces the paper's
// Figure 4 view — the job progress timeline with and without the stage
// barrier — on a 3GB corpus.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"

	"blmr/internal/harness"
)

func main() {
	f := harness.Fig4()
	fmt.Println(f.Render())
	fmt.Printf("The pipelined run performed its reduce work inside the %.1fs of mapper\n", f.MapperSlack)
	fmt.Println("slack that the barrier version spends buffering and sorting.")
}
