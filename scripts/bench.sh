#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and snapshot the raw
# `go test -bench` output as BENCH_<n>.json at the repo root.
#
#   scripts/bench.sh [n]
#
# n defaults to the next unused snapshot index. The snapshot covers the
# paper's headline figures (Fig4 WordCount barrier vs pipelined, Fig6
# representative points) and the wall-clock fast-path microbenchmarks
# this repo gates perf PRs on: the batched pipelined shuffle
# (internal/mr), the zero-alloc k-way merger (internal/sortx), and the
# shuffle-transport comparison (in-proc vs spill-run exchange vs TCP).
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-}"
if [[ -z "$n" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
fi
# BENCH_OUT overrides the snapshot path (bench_compare.sh writes to a temp
# file instead of claiming the next index).
out="${BENCH_OUT:-BENCH_${n}.json}"

run_bench() { # run_bench <pkg> <pattern> <benchtime>
  local raw
  if ! raw="$(go test -run 'XXX' -bench "$2" -benchtime "$3" -benchmem "$1" 2>&1)"; then
    echo "bench.sh: benchmark run failed for $1 ($2):" >&2
    printf '%s\n' "$raw" >&2
    exit 1
  fi
  printf '%s\n' "$raw" | grep -E '^(Benchmark|PASS|ok)' || true
}

tmp="$(mktemp)"
{
  echo "== figures (simulated cluster, vsec/job) =="
  run_bench . 'Fig4WordCount3GB|Fig6Sort8GB|Fig6WordCount8GB' 1x
  echo "== wall-clock fast paths (real-concurrency engine) =="
  run_bench ./internal/mr/ 'PipelinedWordCount1M_(Batch1$|Batch256$|Batch256Combiner)|PipelinedSort1M_Batch(1|256)$' 3x
  echo "== merge kernel =="
  run_bench ./internal/sortx/ 'MergerNext|MergerDrain|ByKey' 2s
  echo "== external shuffle (disk-spilling, bounded memory) =="
  run_bench ./internal/mr/ 'Sort1M_Spill' 1x
  echo "== shuffle transports (in-proc vs run exchange vs loopback TCP; TCP rides the pooled BLR2 fetch plane) =="
  run_bench ./internal/mr/ 'WordCount250K_(InProc$|Runx$|TCP$)' 2x
  echo "== fetch-plane raw floor (cached-handle buffered serve vs zero-copy sendfile; compressed TCP exchange at decode-workers 1 vs default pool) =="
  run_bench ./internal/shuffle/ 'SectionServe' 2s
  run_bench ./internal/mr/ 'WordCount250K_TCPDeltaDecode' 2x
  echo "== spill-run compression (none vs block vs delta; spill-ratio = raw/sealed bytes) =="
  run_bench ./internal/mr/ 'Spill1M_Comp(None|Block|Delta)' 1x
  echo "== cross-wave overlap (multi-process engine: staged vs overlapped dispatch, barrier vs pipelined) =="
  run_bench ./internal/mpexec/ 'Cluster(WordCount|Sort)' 2x
  echo "== worker-churn recovery (3-worker cluster, one SIGKILLed mid-job vs undisturbed; plus the sim-predicted overhead the parity test pins to) =="
  run_bench ./internal/mpexec/ 'ClusterRecovery' 1x
  run_bench . 'FaultPredicted' 1x
  echo "== multi-tenant job service (heterogeneous 3-job stream on one 3-worker pool: sequential admission vs concurrent under each placement policy) =="
  run_bench ./internal/mpexec/ 'ServiceStream' 2x
  echo "== coordinator crash-restart (durable journal: resume with sealed-run re-attach vs cold re-execution of the same job) =="
  run_bench ./internal/mpexec/ 'CoordRestart' 3x
} | tee "$tmp"

# Emit a JSON snapshot: one {name, value, unit} triple per reported
# metric line, parsed from the standard benchmark output format.
awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
  name = $1
  for (i = 3; i < NF; i += 2) {
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"value\": %s, \"unit\": \"%s\"}", name, $i, $(i + 1)
  }
}
END { print "\n]" }
' "$tmp" >"$out"
rm -f "$tmp"
echo "wrote $out"
