#!/usr/bin/env bash
# bench_compare.sh — regression gate over the perf-trajectory snapshots.
#
# Runs a fresh scripts/bench.sh pass into a temp file and diffs it against
# the latest committed BENCH_<n>.json. Metrics present in both snapshots
# are compared by unit:
#
#   ns/op, vsec/job   lower is better: fail if new > old * (1 + TOLERANCE)
#   recs/s            higher is better: fail if new < old / (1 + TOLERANCE)
#
# Other units (B/op, allocs/op, the spill MB gauges) are informational
# only. Exits 1 on any regression beyond TOLERANCE (default 25%) — run it
# as a non-blocking CI job: shared-runner noise makes it advisory, not a
# merge gate.
#
#   scripts/bench_compare.sh [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-0.25}"

baseline="${1:-}"
if [[ -z "$baseline" ]]; then
  latest=0
  for f in BENCH_*.json; do
    [[ -e "$f" ]] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    [[ "$n" =~ ^[0-9]+$ ]] && ((n > latest)) && latest=$n
  done
  if ((latest == 0)); then
    echo "bench_compare.sh: no BENCH_*.json baseline found" >&2
    exit 1
  fi
  baseline="BENCH_${latest}.json"
fi
echo "baseline: $baseline (tolerance: $TOLERANCE)"

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT
BENCH_OUT="$fresh" scripts/bench.sh >/dev/null

# Flatten a snapshot to "name|unit value" lines (first occurrence wins).
# Quote-split fields of an entry line:
#   {"name": "X", "value": 42.5, "unit": "ns/op"}
#    1    2  3 4  5  6     7      8   9  10
flatten() {
  awk -F'"' '/"name"/ {
    name = $4; unit = $10
    value = $7; gsub(/[^0-9.eE+-]/, "", value)
    key = name "|" unit
    if (!seen[key]++) print key, value
  }' "$1"
}

join <(flatten "$baseline" | sort) <(flatten "$fresh" | sort) |
  awk -v tol="$TOLERANCE" '
  {
    split($1, key, "|")
    name = key[1]; unit = key[2]
    old = $2; new = $3
    if (old == 0) next
    ratio = new / old
    verdict = "ok"
    if (unit == "ns/op" || unit == "vsec/job") {
      if (ratio > 1 + tol) { verdict = "REGRESSION"; bad++ }
    } else if (unit == "recs/s") {
      if (ratio < 1 / (1 + tol)) { verdict = "REGRESSION"; bad++ }
    } else {
      verdict = "info"
    }
    printf "%-60s %12s %14.4g %14.4g %7.2fx %s\n", name, unit, old, new, ratio, verdict
  }
  END {
    if (bad > 0) {
      printf "\n%d metric(s) regressed beyond %.0f%%\n", bad, tol * 100
      exit 1
    }
    print "\nno throughput regressions beyond tolerance"
  }'
