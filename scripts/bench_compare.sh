#!/usr/bin/env bash
# bench_compare.sh — regression gate over the perf-trajectory snapshots.
#
# Runs a fresh scripts/bench.sh pass into a temp file and diffs it against
# the latest committed BENCH_<n>.json. Metrics present in both snapshots
# are compared by unit:
#
#   ns/op, vsec/job   lower is better: fail if new > old * (1 + TOLERANCE)
#   recs/s            higher is better: fail if new < old / (1 + TOLERANCE)
#
# A metric present on only one side is reported as "new benchmark" /
# "removed benchmark" — informational, never a failure: fresh coverage and
# renames must not read as regressions, and must not vanish from the
# report either. Other units (B/op, allocs/op, the spill MB gauges) are
# informational only. Exits 1 on any regression beyond TOLERANCE (default
# 25%) — run it as a non-blocking CI job: shared-runner noise makes it
# advisory, not a merge gate.
#
#   scripts/bench_compare.sh [baseline.json]
#   scripts/bench_compare.sh --self-test   # exercise the gate on synthetic
#                                          # snapshots; runs no benchmarks
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-0.25}"

# Flatten a snapshot to "name|unit value" lines (first occurrence wins).
# Quote-split fields of an entry line:
#   {"name": "X", "value": 42.5, "unit": "ns/op"}
#    1    2  3 4  5  6     7      8   9  10
flatten() {
  awk -F'"' '/"name"/ {
    name = $4; unit = $10
    value = $7; gsub(/[^0-9.eE+-]/, "", value)
    key = name "|" unit
    if (!seen[key]++) print key, value
  }' "$1"
}

# compare <baseline.json> <fresh.json> — the gate proper. Full outer join
# (-a1 -a2): metrics on only one side surface as new/removed lines instead
# of silently dropping out of the report.
compare() {
  join -a1 -a2 -e NA -o '0,1.2,2.2' \
    <(flatten "$1" | sort) <(flatten "$2" | sort) |
    awk -v tol="$TOLERANCE" '
    {
      split($1, key, "|")
      name = key[1]; unit = key[2]
      old = $2; new = $3
      if (old == "NA") {
        printf "%-60s %12s %14s %14.4g %7s %s\n", name, unit, "-", new, "-", "new benchmark"
        added++; next
      }
      if (new == "NA") {
        printf "%-60s %12s %14.4g %14s %7s %s\n", name, unit, old, "-", "-", "removed benchmark"
        removed++; next
      }
      if (old == 0) next
      ratio = new / old
      verdict = "ok"
      if (unit == "ns/op" || unit == "vsec/job") {
        if (ratio > 1 + tol) { verdict = "REGRESSION"; bad++ }
      } else if (unit == "recs/s") {
        if (ratio < 1 / (1 + tol)) { verdict = "REGRESSION"; bad++ }
      } else {
        verdict = "info"
      }
      printf "%-60s %12s %14.4g %14.4g %7.2fx %s\n", name, unit, old, new, ratio, verdict
    }
    END {
      if (added > 0) printf "\n%d new benchmark(s) with no baseline yet\n", added
      if (removed > 0) printf "%d benchmark(s) removed since the baseline\n", removed
      if (bad > 0) {
        printf "\n%d metric(s) regressed beyond %.0f%%\n", bad, tol * 100
        exit 1
      }
      print "\nno throughput regressions beyond tolerance"
    }'
}

# self_test pins the gate's own behavior on synthetic snapshots: drift
# within tolerance passes, added/removed metrics are reported but never
# fail, and a real regression exits non-zero. Run by the CI lint job.
self_test() {
  local dir out
  dir="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand $dir now, on purpose
  trap "rm -rf '$dir'" RETURN
  cat >"$dir/old.json" <<'JSON'
[
  {"name": "BenchmarkKeep", "value": 100, "unit": "ns/op"},
  {"name": "BenchmarkFaster", "value": 100, "unit": "recs/s"},
  {"name": "BenchmarkGone", "value": 5, "unit": "ns/op"}
]
JSON
  cat >"$dir/new_ok.json" <<'JSON'
[
  {"name": "BenchmarkKeep", "value": 110, "unit": "ns/op"},
  {"name": "BenchmarkFaster", "value": 120, "unit": "recs/s"},
  {"name": "BenchmarkAdded", "value": 7, "unit": "ns/op"}
]
JSON
  cat >"$dir/new_bad.json" <<'JSON'
[
  {"name": "BenchmarkKeep", "value": 200, "unit": "ns/op"}
]
JSON
  if ! out="$(compare "$dir/old.json" "$dir/new_ok.json")"; then
    echo "self-test FAILED: added/removed metrics must not fail the gate" >&2
    printf '%s\n' "$out" >&2
    return 1
  fi
  if ! grep -q "new benchmark" <<<"$out"; then
    echo "self-test FAILED: added metric not reported" >&2
    return 1
  fi
  if ! grep -q "removed" <<<"$out"; then
    echo "self-test FAILED: removed metric not reported" >&2
    return 1
  fi
  if out="$(compare "$dir/old.json" "$dir/new_bad.json")"; then
    echo "self-test FAILED: a 2x ns/op regression must fail the gate" >&2
    printf '%s\n' "$out" >&2
    return 1
  fi
  if ! grep -q "REGRESSION" <<<"$out"; then
    echo "self-test FAILED: regression not labeled in the report" >&2
    return 1
  fi
  echo "bench_compare.sh: self-test OK"
}

if [[ "${1:-}" == "--self-test" ]]; then
  self_test
  exit 0
fi

baseline="${1:-}"
if [[ -z "$baseline" ]]; then
  latest=0
  for f in BENCH_*.json; do
    [[ -e "$f" ]] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    [[ "$n" =~ ^[0-9]+$ ]] && ((n > latest)) && latest=$n
  done
  if ((latest == 0)); then
    echo "bench_compare.sh: no BENCH_*.json baseline found" >&2
    exit 1
  fi
  baseline="BENCH_${latest}.json"
fi
echo "baseline: $baseline (tolerance: $TOLERANCE)"

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT
BENCH_OUT="$fresh" scripts/bench.sh >/dev/null

compare "$baseline" "$fresh"
