module blmr

go 1.24
